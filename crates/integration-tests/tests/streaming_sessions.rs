//! Streaming characterization sessions over real TCP.
//!
//! The acceptance contract (ISSUE 9): a session fed ragged chunks
//! through `SessionPush` must produce a verdict **bit-identical** to a
//! one-shot `Characterize` over the concatenated samples — and the
//! wire protocol must stay in sync under hostile framing: partial
//! session frames split across reads, pushes after close, and
//! overload rejections absorbed by the client's retry schedule.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use didt_serve::{
    CharacterizeSpec, Client, ClientConfig, ClientError, ClosedLoopSpec, ErrorCode, FrameReader,
    Request, RequestBody, ResponsePayload, ServeConfig, Server, Service, SessionSpec, TraceSource,
    MAX_FRAME_LEN,
};
use didt_telemetry::Json;

fn start_server(config: ServeConfig) -> Server {
    Server::start(config, Service::standard().expect("service")).expect("server start")
}

/// Deterministic synthetic current trace.
fn trace(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let t = i as f64;
            20.0 + 4.0 * (t / 7.3).sin() + 2.5 * (t / 2.1).sin()
        })
        .collect()
}

fn spec_for(window: usize, samples: Vec<f64>) -> CharacterizeSpec {
    CharacterizeSpec {
        trace: TraceSource::Inline(samples),
        window,
        gauss_windows: 25,
        ..CharacterizeSpec::default()
    }
}

/// Drop the session id the verdict carries on top of the report.
fn strip_session(verdict: Json) -> Json {
    match verdict {
        Json::Obj(pairs) => Json::Obj(pairs.into_iter().filter(|(k, _)| k != "session").collect()),
        other => other,
    }
}

#[test]
fn session_verdict_bit_identical_to_one_shot_over_tcp() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    for window in [16usize, 64, 256] {
        let samples = trace(1111);
        let one_shot = client
            .characterize(spec_for(window, samples.clone()), None)
            .expect("one-shot characterize");

        let session = client
            .session_open(SessionSpec {
                window,
                gauss_windows: 25,
                ..SessionSpec::default()
            })
            .expect("session open");
        // Ragged chunks, deliberately misaligned with the window.
        let mut offset = 0usize;
        for chunk in [1usize, 3, 50, window - 1, window, 700, usize::MAX] {
            let end = samples.len().min(offset.saturating_add(chunk));
            client
                .session_push(session, samples[offset..end].to_vec())
                .expect("push");
            offset = end;
            if offset == samples.len() {
                break;
            }
        }
        let verdict = client.session_verdict(session, None).expect("verdict");
        client.session_close(session).expect("close");

        assert_eq!(
            strip_session(verdict).render(),
            one_shot.render(),
            "window {window}: streamed verdict must be byte-identical to one-shot"
        );
    }

    drop(client);
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn partial_session_frames_split_across_reads_stay_in_sync() {
    let server = start_server(ServeConfig::default());
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = FrameReader::new(stream);
    let give_up = Instant::now() + Duration::from_secs(30);
    let read = |reader: &mut FrameReader<TcpStream>| {
        let mut abort = || Instant::now() >= give_up;
        reader.read_frame(MAX_FRAME_LEN, &mut abort).expect("reply")
    };

    // Open a session with an ordinary frame.
    let open = Request {
        id: 1,
        deadline_ms: None,
        body: RequestBody::SessionOpen(SessionSpec {
            window: 16,
            gauss_windows: 25,
            ..SessionSpec::default()
        }),
    };
    didt_serve::write_frame(&mut writer, &open.to_json()).expect("open frame");
    let reply = read(&mut reader);
    let session = reply
        .get("result")
        .and_then(|r| r.get("session"))
        .and_then(Json::as_u64)
        .expect("session id");

    // Push frames whose bytes arrive in three bursts: the length
    // prefix alone, half the payload, then the rest after a pause. The
    // server's resumable FrameReader must reassemble every one.
    for id in 2..5u64 {
        let push = Request {
            id,
            deadline_ms: None,
            body: RequestBody::SessionPush {
                session,
                samples: trace(37),
            },
        };
        let payload = push.to_json().render().into_bytes();
        writer
            .write_all(&(payload.len() as u32).to_be_bytes())
            .expect("prefix");
        writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
        let half = payload.len() / 2;
        writer.write_all(&payload[..half]).expect("first half");
        writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
        writer.write_all(&payload[half..]).expect("second half");
        let reply = read(&mut reader);
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(id));
    }

    // The split frames really landed: the verdict sees 3 * 37 samples.
    let verdict = Request {
        id: 9,
        deadline_ms: None,
        body: RequestBody::SessionVerdict { session },
    };
    didt_serve::write_frame(&mut writer, &verdict.to_json()).expect("verdict frame");
    let reply = read(&mut reader);
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        reply
            .get("result")
            .and_then(|r| r.get("trace_len"))
            .and_then(Json::as_u64),
        Some(111),
        "verdict must cover every sample from the split frames"
    );

    drop(writer);
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.protocol_errors, 0, "split frames are not errors");
}

#[test]
fn push_after_close_is_structured_error_and_connection_survives() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let session = client
        .session_open(SessionSpec {
            window: 16,
            gauss_windows: 25,
            ..SessionSpec::default()
        })
        .expect("open");
    client.session_push(session, trace(64)).expect("push");
    client.session_close(session).expect("close");

    // Pushing into the closed session must be a structured error — not
    // a desync, not a hangup.
    match client.session_push(session, trace(8)) {
        Err(ClientError::Server {
            code: ErrorCode::SessionNotFound,
            ..
        }) => {}
        other => panic!("push after close returned {other:?}"),
    }
    // Same connection, still in sync: a fresh session works end to end.
    let session2 = client
        .session_open(SessionSpec {
            window: 16,
            gauss_windows: 25,
            ..SessionSpec::default()
        })
        .expect("reopen");
    client.session_push(session2, trace(64)).expect("push 2");
    assert!(client.session_verdict(session2, None).is_ok());
    client.session_close(session2).expect("close 2");

    drop(client);
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn client_retry_schedule_absorbs_overload_rejections() {
    // A deliberately tiny server: 1 worker, queue depth 2. Concurrent
    // clients with the opt-in retry config must see every request
    // eventually succeed — rejections are absorbed by backoff, never
    // surfaced, and never turn into transport errors.
    let server = start_server(ServeConfig {
        workers: 1,
        queue_depth: 2,
        ..ServeConfig::default()
    });
    let addr = server.local_addr().to_string();
    let spec = ClosedLoopSpec {
        benchmark: "gzip".to_string(),
        pdn_pct: 150.0,
        monitor_terms: 13,
        controller: didt_bench::ControllerSpec::None,
        instructions: 2_000,
        warmup_cycles: 500,
        replay: None,
    };
    let ok = AtomicU64::new(0);
    let surfaced_rejections = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let addr = addr.clone();
            let spec = spec.clone();
            let (ok, surfaced, errors) = (&ok, &surfaced_rejections, &errors);
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.set_config(ClientConfig::with_retries(10));
                for _ in 0..5 {
                    match client.call(RequestBody::ClosedLoop(spec.clone()), None) {
                        Ok(resp) => match resp.payload {
                            ResponsePayload::Ok { .. } => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            ResponsePayload::Rejected { .. } => {
                                surfaced.fetch_add(1, Ordering::Relaxed);
                            }
                            ResponsePayload::Error { .. } => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let report = server.shutdown();
    assert_eq!(ok.load(Ordering::Relaxed), 30, "every request must land");
    assert_eq!(
        surfaced_rejections.load(Ordering::Relaxed),
        0,
        "retries must absorb overload"
    );
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    assert_eq!(report.worker_panics, 0);
}
