//! Cross-crate integration: the offline characterization pipeline
//! (uarch traces → dsp wavelets → stats tests → core variance model).

use didt_core::characterize::{
    EmergencyEstimator, GaussianityStudy, ScaleGainModel, VarianceModel,
};
use didt_core::DidtSystem;
use didt_uarch::{capture_trace, Benchmark};

fn system() -> DidtSystem {
    DidtSystem::standard().expect("standard system")
}

#[test]
fn memory_bound_benchmarks_are_least_gaussian() {
    let sys = system();
    let study = GaussianityStudy::new(0.95, 42);
    let rate = |b: Benchmark| {
        let t = capture_trace(b, sys.processor(), 1, 60_000, 1 << 16);
        study
            .classify(&t.samples, 64, 250)
            .expect("classify")
            .acceptance_rate()
    };
    // The paper's Figure 12 contrast: swim/lucas vs mesa/sixtrack.
    let swim = rate(Benchmark::Swim);
    let lucas = rate(Benchmark::Lucas);
    let mesa = rate(Benchmark::Mesa);
    let sixtrack = rate(Benchmark::Sixtrack);
    assert!(
        swim < mesa && swim < sixtrack,
        "swim {swim} vs mesa {mesa} / sixtrack {sixtrack}"
    );
    assert!(
        lucas < mesa && lucas < sixtrack,
        "lucas {lucas} vs mesa {mesa} / sixtrack {sixtrack}"
    );
}

#[test]
fn non_gaussian_windows_have_lower_variance_figure7() {
    // The paper's Figure 7 effect — non-Gaussian windows carry less
    // current variance than average — is strongest at the shortest
    // window size (32 cycles), where flat stall windows dominate the
    // rejected class.
    let sys = system();
    let study = GaussianityStudy::new(0.95, 7);
    let mut ng = 0.0;
    let mut overall = 0.0;
    for b in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Applu] {
        let t = capture_trace(b, sys.processor(), 1, 60_000, 1 << 16);
        let r = study.classify(&t.samples, 32, 300).expect("classify");
        ng += r.non_gaussian_variance;
        overall += r.overall_variance;
    }
    assert!(ng < overall, "non-Gaussian {ng} vs overall {overall}");
}

#[test]
fn emergency_estimator_tracks_observation_across_classes() {
    // A compressed Figure 9: the estimate must track the observation
    // within ~1.5 % of cycles and preserve the problematic/benign
    // ordering between a hot compute benchmark and a stall-heavy one.
    let sys = system();
    let pdn = sys.pdn_at(150.0).expect("pdn");
    let gains = ScaleGainModel::calibrate(&pdn, 64, 0xCAB1).expect("gains");
    let est = EmergencyEstimator::new(VarianceModel::new(gains), 0.97);

    let run = |b: Benchmark| {
        let t = capture_trace(b, sys.processor(), 0xD1D7, 100_000, 1 << 17);
        est.compare(&t.samples, &pdn).expect("compare")
    };
    let hot = run(Benchmark::Crafty);
    let cold = run(Benchmark::Mcf);
    assert!(hot.abs_error() < 0.025, "crafty error {}", hot.abs_error());
    assert!(cold.abs_error() < 0.025, "mcf error {}", cold.abs_error());
    assert!(
        hot.observed > cold.observed,
        "crafty {} should exceed mcf {}",
        hot.observed,
        cold.observed
    );
    assert!(
        hot.estimated > cold.estimated,
        "estimates must preserve the ordering"
    );
}

#[test]
fn variance_model_is_deterministic_end_to_end() {
    let sys = system();
    let pdn = sys.pdn_at(150.0).expect("pdn");
    let t = capture_trace(Benchmark::Twolf, sys.processor(), 3, 20_000, 8192);
    let gains = ScaleGainModel::calibrate(&pdn, 64, 5).expect("gains");
    let model = VarianceModel::new(gains);
    let a: Vec<_> = t
        .samples
        .chunks_exact(64)
        .map(|w| model.estimate(w).expect("estimate").v_variance)
        .collect();
    let gains2 = ScaleGainModel::calibrate(&pdn, 64, 5).expect("gains");
    let model2 = VarianceModel::new(gains2);
    let b: Vec<_> = t
        .samples
        .chunks_exact(64)
        .map(|w| model2.estimate(w).expect("estimate").v_variance)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn trace_fitted_gains_also_predict() {
    // The regression-based calibration path must produce a usable model.
    let sys = system();
    let pdn = sys.pdn_at(150.0).expect("pdn");
    let t1 = capture_trace(Benchmark::Vpr, sys.processor(), 1, 50_000, 1 << 15);
    let t2 = capture_trace(Benchmark::Applu, sys.processor(), 1, 50_000, 1 << 15);
    let gains = ScaleGainModel::calibrate_from_traces(&pdn, 64, &[&t1.samples, &t2.samples])
        .expect("trace fit");
    let model = VarianceModel::new(gains);
    let t3 = capture_trace(Benchmark::Gap, sys.processor(), 2, 50_000, 1 << 15);
    let est = EmergencyEstimator::new(model, 0.97);
    let r = est.compare(&t3.samples, &pdn).expect("compare");
    assert!(r.abs_error() < 0.04, "error {}", r.abs_error());
}
