//! Property tests for the DWT machinery: perfect reconstruction on
//! lengths that are *not* powers of two (any multiple of `2^levels` is
//! legal), for both the Haar and Daubechies-4 bases; orthonormal energy
//! conservation (Parseval); the per-scale variance decomposition of
//! `didt_dsp::variance` summing back to the signal's population
//! variance at full depth; and the filter-generic family engine
//! (db2–db8, expansive boundary modes) reconstructing on arbitrary
//! lengths while staying bit-identical to the legacy kernels under the
//! periodic wrap.

use didt_dsp::wavelet::{Daubechies4, Haar, Wavelet};
use didt_dsp::{
    dwt, dwt_boundary, dwt_into, idwt, scale_variances, BoundaryMode, DwtScratch,
    WaveletDecomposition, WaveletFamily,
};
use proptest::prelude::*;

fn reconstruction_error(signal: &[f64], wavelet: &dyn Wavelet, levels: usize) -> f64 {
    let d = dwt(signal, wavelet, levels).unwrap();
    let r = idwt(&d).unwrap();
    signal
        .iter()
        .zip(&r)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

fn energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

proptest! {
    /// Lengths like 24, 48, 96, 72 — divisible by `2^levels` yet far
    /// from a power of two — must reconstruct exactly, Haar and D4.
    #[test]
    fn roundtrip_on_non_power_of_two_lengths(
        m in 3usize..=9,
        levels in 1usize..=3,
        raw in prop::collection::vec(-100.0f64..100.0, 96..=96),
    ) {
        let len = m << levels;
        prop_assume!(len <= raw.len());
        let signal = &raw[..len];
        prop_assert!(reconstruction_error(signal, &Haar, levels) < 1e-9);
        prop_assert!(reconstruction_error(signal, &Daubechies4, levels) < 1e-9);
    }

    /// Daubechies-4 at full depth on power-of-two windows.
    #[test]
    fn daubechies4_full_depth_roundtrip(
        pow in 3u32..=7,
        raw in prop::collection::vec(-50.0f64..50.0, 128..=128),
    ) {
        let len = 1usize << pow;
        let signal = &raw[..len];
        // D4's 4-tap filter needs the coarsest pyramid level to keep at
        // least 4 samples: cap the depth accordingly.
        let levels = (pow as usize).saturating_sub(1).max(1);
        prop_assert!(reconstruction_error(signal, &Daubechies4, levels) < 1e-9);
    }

    /// Orthonormal bases conserve energy across the transform:
    /// `||s||^2 = ||a||^2 + sum_j ||d_j||^2` (Parseval).
    #[test]
    fn transform_conserves_energy(
        m in 2usize..=8,
        levels in 1usize..=4,
        raw in prop::collection::vec(-10.0f64..10.0, 128..=128),
    ) {
        let len = m << levels;
        prop_assume!(len <= raw.len());
        let signal = &raw[..len];
        for wavelet in [&Haar as &dyn Wavelet, &Daubechies4] {
            let d = dwt(signal, wavelet, levels).unwrap();
            let mut coeff_energy = energy(d.approximation());
            for level in 1..=levels {
                coeff_energy += energy(d.detail(level).unwrap());
            }
            let sig_energy = energy(signal);
            prop_assert!(
                (coeff_energy - sig_energy).abs() <= 1e-9 * sig_energy.max(1.0),
                "{}: {} vs {}", wavelet.name(), coeff_energy, sig_energy
            );
        }
    }

    /// Parseval in `didt_dsp::variance`: at full decomposition depth the
    /// per-scale variances sum to the signal's population variance.
    #[test]
    fn scale_variances_sum_to_population_variance(
        pow in 3u32..=8,
        raw in prop::collection::vec(-25.0f64..25.0, 256..=256),
    ) {
        let len = 1usize << pow;
        let signal = &raw[..len];
        let d = dwt(signal, &Haar, pow as usize).unwrap();
        let scales = scale_variances(&d).unwrap();
        let total: f64 = scales.iter().map(|s| s.variance).sum();
        let mean = signal.iter().sum::<f64>() / len as f64;
        let pop_var = signal.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / len as f64;
        prop_assert!(
            (total - pop_var).abs() <= 1e-9 * pop_var.max(1.0),
            "sum {} vs population variance {}", total, pop_var
        );
    }

    /// The filter-generic engine across the whole Daubechies ladder:
    /// every family reconstructs perfectly under every expansive
    /// boundary mode on lengths with no dyadic structure at all.
    #[test]
    fn family_engine_roundtrips_on_awkward_lengths(
        len in 1usize..=97,
        levels in 1usize..=4,
        fam_idx in 0usize..8,
        mode_idx in 0usize..3,
        raw in prop::collection::vec(-100.0f64..100.0, 97..=97),
    ) {
        let family = WaveletFamily::ALL[fam_idx];
        let mode = BoundaryMode::EXTENSIONS[mode_idx];
        let signal = &raw[..len];
        let d = dwt_boundary(signal, &family, levels, mode).unwrap();
        let r = idwt(&d).unwrap();
        let worst = signal
            .iter()
            .zip(&r)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        prop_assert!(
            worst < 1e-8,
            "{}/{} len {} levels {}: err {}", family.name(), mode.name(), len, levels, worst
        );
    }

    /// Zero padding is still an orthonormal analysis: Parseval holds
    /// exactly even on prime lengths where the periodic wrap is
    /// undefined.
    #[test]
    fn family_engine_zero_pad_conserves_energy(
        len in 1usize..=89,
        levels in 1usize..=4,
        fam_idx in 0usize..8,
        raw in prop::collection::vec(-25.0f64..25.0, 89..=89),
    ) {
        let family = WaveletFamily::ALL[fam_idx];
        let signal = &raw[..len];
        let d = dwt_boundary(signal, &family, levels, BoundaryMode::ZeroPad).unwrap();
        let sig_energy = energy(signal);
        prop_assert!(
            (d.energy() - sig_energy).abs() <= 1e-8 * sig_energy.max(1.0),
            "{} len {} levels {}: {} vs {}",
            family.name(), len, levels, d.energy(), sig_energy
        );
    }

    /// The generic periodic path is the legacy path, bit for bit: the
    /// offline characterization pipeline (calibration, variance models,
    /// golden numbers) must not move when routed through
    /// `WaveletFamily::Haar` / `Db2` instead of the vendored kernels.
    #[test]
    fn family_engine_periodic_is_bit_identical_to_legacy(
        pow in 3u32..=8,
        raw in prop::collection::vec(-100.0f64..100.0, 256..=256),
    ) {
        let len = 1usize << pow;
        let signal = &raw[..len];
        let pairs: [(&dyn Wavelet, WaveletFamily, usize); 2] = [
            (&Haar, WaveletFamily::Haar, pow as usize),
            (&Daubechies4, WaveletFamily::Db2, (pow as usize).saturating_sub(1).max(1)),
        ];
        for (legacy, family, levels) in pairs {
            let old = dwt(signal, legacy, levels).unwrap();
            let new = dwt_boundary(signal, &family, levels, BoundaryMode::Periodic).unwrap();
            prop_assert_eq!(old.approximation().len(), new.approximation().len());
            for (a, b) in old.approximation().iter().zip(new.approximation()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for level in 1..=levels {
                let oa = old.detail(level).unwrap();
                let nb = new.detail(level).unwrap();
                prop_assert_eq!(oa.len(), nb.len());
                for (a, b) in oa.iter().zip(nb) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// The in-place scratch path agrees with the batch transform even
    /// when one scratch/output pair is reused across differently shaped
    /// decompositions.
    #[test]
    fn scratch_path_matches_batch(
        m in 2usize..=6,
        levels in 1usize..=3,
        raw in prop::collection::vec(-100.0f64..100.0, 64..=64),
    ) {
        let len = m << levels;
        prop_assume!(len <= raw.len());
        let signal = &raw[..len];
        let mut scratch = DwtScratch::new();
        let mut out = WaveletDecomposition::empty();
        for wavelet in [&Haar as &dyn Wavelet, &Daubechies4] {
            dwt_into(signal, wavelet, levels, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(&out, &dwt(signal, wavelet, levels).unwrap());
        }
    }
}
