//! The sharded router over real worker processes' TCP protocol:
//! deterministic shard placement, hot disjoint caches, failover on a
//! worker that disconnects mid-request, and session affinity dying
//! with its owner.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use didt_serve::{
    write_frame, CharacterizeSpec, Client, ClientError, ErrorCode, FrameReader, HashRing, Request,
    RequestBody, Response, Router, RouterConfig, ServeConfig, Server, Service, SessionSpec,
    TraceSource, MAX_FRAME_LEN,
};
use didt_telemetry::Json;

fn start_worker() -> Server {
    Server::start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        Service::standard().expect("service"),
    )
    .expect("worker start")
}

/// A router whose prober stays out of the way: worker death must be
/// discovered (and counted) by the forward path.
fn quiet_router(workers: Vec<String>) -> Router {
    let mut config = RouterConfig::new("127.0.0.1:0".to_string(), workers);
    config.probe_interval_ms = 60_000;
    config.warm_on_rejoin = false;
    Router::start(config).expect("router start")
}

/// Deterministic per-key trace, shared by every request for that key.
fn key_trace(window: usize, pct: f64) -> Vec<f64> {
    (0..1024)
        .map(|i| {
            let t = i as f64;
            20.0 + (window as f64).sqrt() * (t / 7.3).sin() + (pct / 40.0) * (t / 2.1).sin()
        })
        .collect()
}

fn key_spec(window: usize, pct: f64) -> CharacterizeSpec {
    CharacterizeSpec {
        trace: TraceSource::Inline(key_trace(window, pct)),
        pdn_pct: pct,
        window,
        gauss_windows: 20,
        ..CharacterizeSpec::default()
    }
}

const KEYS: [(usize, f64); 8] = [
    (16, 100.0),
    (16, 150.0),
    (32, 100.0),
    (32, 150.0),
    (64, 100.0),
    (64, 150.0),
    (128, 100.0),
    (128, 150.0),
];

/// Per-worker (served, gains calibrations) from its own Stats.
fn worker_counts(addr: &str) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("stats connect");
    let stats = client.stats().expect("stats");
    let served = stats.get("served").and_then(Json::as_u64).unwrap_or(0);
    let gains_computed = stats
        .get("cache")
        .and_then(Json::as_arr)
        .and_then(|classes| {
            classes
                .iter()
                .find(|c| c.get("name").and_then(Json::as_str) == Some("gains"))
                .and_then(|c| c.get("computed"))
                .and_then(Json::as_u64)
        })
        .unwrap_or(0);
    (served, gains_computed)
}

#[test]
fn sharding_is_stable_and_keeps_worker_caches_disjoint() {
    let workers: Vec<Server> = (0..2).map(|_| start_worker()).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let router = quiet_router(addrs.clone());
    let mut client = Client::connect(router.local_addr()).expect("connect");

    let sweep = |client: &mut Client| {
        for &(w, p) in &KEYS {
            client
                .characterize(key_spec(w, p), None)
                .expect("characterize");
        }
    };
    sweep(&mut client);
    let after_first: Vec<(u64, u64)> = addrs.iter().map(|a| worker_counts(a)).collect();
    sweep(&mut client);
    let after_second: Vec<(u64, u64)> = addrs.iter().map(|a| worker_counts(a)).collect();

    // Every key calibrated exactly once across the fleet: the shards
    // are disjoint, and both workers own a non-empty share.
    let total_gains: u64 = after_first.iter().map(|&(_, g)| g).sum();
    assert_eq!(total_gains, KEYS.len() as u64, "one calibration per key");
    for (i, &(served, _)) in after_first.iter().enumerate() {
        assert!(served > 0, "worker {i} received no traffic");
    }
    for (i, (&(s1, g1), &(s2, g2))) in after_first.iter().zip(&after_second).enumerate() {
        // Identical requests route identically: had any key moved, its
        // new owner would have calibrated it afresh. The second sweep
        // must add traffic but not one calibration.
        assert!(s2 > s1, "worker {i} got no second-sweep traffic");
        assert_eq!(g2, g1, "worker {i} recalibrated a warm key");
    }

    drop(client);
    let report = router.shutdown();
    assert_eq!(report.rerouted, 0, "healthy fleet must never reroute");
    for w in workers {
        assert_eq!(w.shutdown().worker_panics, 0);
    }
}

/// A fake worker that answers health probes, then hangs up on the
/// first real request *after reading its frame* — a mid-request
/// disconnect from the router's point of view.
fn treacherous_worker() -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.set_nonblocking(true).expect("nonblocking");
    let addr = listener.local_addr().expect("addr").to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        // Poll for connections so the thread can exit with the test
        // instead of parking in accept() on a socket nobody will dial.
        while !stop_flag.load(Ordering::Relaxed) {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(_) => return,
            };
            stream.set_nodelay(true).ok();
            stream.set_nonblocking(false).ok();
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .ok();
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = FrameReader::new(stream);
            let give_up = Instant::now() + Duration::from_secs(30);
            loop {
                let mut abort = || Instant::now() >= give_up;
                let Ok(json) = reader.read_frame(MAX_FRAME_LEN, &mut abort) else {
                    break;
                };
                let Ok(request) = Request::from_json(&json) else {
                    break;
                };
                if matches!(request.body, RequestBody::Ping) {
                    let pong = Response::ok(
                        request.id,
                        "pong",
                        Json::obj(vec![("version", Json::num(2.0))]),
                    );
                    if write_frame(&mut writer, &pong.to_json()).is_err() {
                        break;
                    }
                } else {
                    // Read the frame, then vanish mid-request.
                    break;
                }
            }
        }
    });
    (addr, stop, handle)
}

#[test]
fn worker_disconnect_mid_request_reroutes_without_loss() {
    let real = start_worker();
    let (fake_addr, fake_stop, fake_handle) = treacherous_worker();
    let addrs = vec![real.local_addr().to_string(), fake_addr];
    let router = quiet_router(addrs);
    assert_eq!(router.healthy_workers(), 2, "fake worker must pass probes");

    // The fake worker owns some of the keys (deterministic ring, same
    // replica count as the router's default).
    let ring = HashRing::new(2, 64);
    let owned_by_fake = KEYS
        .iter()
        .filter(|&&(w, p)| {
            let key = Request {
                id: 0,
                deadline_ms: None,
                body: RequestBody::Characterize(key_spec(w, p)),
            }
            .shard_key()
            .expect("shard key");
            ring.route(key) == 1
        })
        .count();
    assert!(owned_by_fake > 0, "key set never touches the fake worker");

    // Every request is answered despite the mid-request disconnects.
    let mut client = Client::connect(router.local_addr()).expect("connect");
    for &(w, p) in &KEYS {
        client
            .characterize(key_spec(w, p), None)
            .expect("characterize despite disconnect");
    }
    assert_eq!(router.healthy_workers(), 1, "fake worker marked down");

    drop(client);
    let report = router.shutdown();
    assert!(
        report.rerouted >= 1,
        "mid-request disconnect must surface as a reroute"
    );
    assert_eq!(real.shutdown().worker_panics, 0);
    fake_stop.store(true, Ordering::Relaxed);
    fake_handle.join().expect("fake worker thread");
}

#[test]
fn sessions_die_with_their_owner_not_the_connection() {
    let worker = start_worker();
    let router = quiet_router(vec![worker.local_addr().to_string()]);
    let mut client = Client::connect(router.local_addr()).expect("connect");

    let session = client
        .session_open(SessionSpec {
            window: 16,
            gauss_windows: 20,
            ..SessionSpec::default()
        })
        .expect("open");
    client
        .session_push(session, key_trace(16, 100.0))
        .expect("push");

    // The owner dies; streaming state is not idempotent, so follow-ups
    // must fail structured — never silently retried elsewhere.
    assert_eq!(worker.shutdown().worker_panics, 0);
    match client.session_push(session, vec![1.0; 8]) {
        Err(ClientError::Server {
            code: ErrorCode::Unavailable,
            ..
        }) => {}
        other => panic!("push to a dead owner returned {other:?}"),
    }
    // New shardable work has no healthy target either...
    match client.characterize(key_spec(16, 100.0), None) {
        Err(ClientError::Server {
            code: ErrorCode::Unavailable,
            ..
        }) => {}
        other => panic!("characterize with no workers returned {other:?}"),
    }
    // ... but the router connection itself is alive and in sync.
    assert!(client.ping().is_ok());

    drop(client);
    let _ = router.shutdown();
}
