//! End-to-end trace toolchain: record a closed-loop run, persist it as
//! a `.dtrc` file, read it back, and replay it — the replayed metrics
//! must be bit-identical to the live run, with the file (not shared
//! process memory) as the only carrier. Plus the determinism contracts
//! of BBV-style phase clustering: fixed seeds give identical
//! clusterings, and the chunking of the trace file is invisible to the
//! clustering downstream of it.

use std::path::PathBuf;

use didt_bench::{capture_records, SweepContext, SweepPoint};
use didt_core::control::{ClosedLoop, ClosedLoopConfig, NoControl};
use didt_trace::{
    cluster_records, read_path, write_path, PhaseConfig, RecordKind, TraceMeta, TraceWriter,
};
use didt_uarch::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("didt_trace_replay_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn replay_from_file_is_bit_identical_to_the_live_run() {
    let ctx = SweepContext::standard().unwrap();
    let pdn = ctx.pdn(150.0).unwrap();
    let cfg = ClosedLoopConfig {
        seed: didt_bench::workload_seed(Benchmark::Mcf, 150.0),
        warmup_cycles: 800,
        instructions: 3_000,
        ..ClosedLoopConfig::standard(Benchmark::Mcf)
    };
    let harness = ClosedLoop::new(*ctx.system().processor(), *pdn, cfg);
    let live = harness.run_recording(&mut NoControl).unwrap();

    let dir = temp_dir("bitident");
    let path = dir.join("mcf.dtrc");
    write_path(&path, &live.meta(), &live.records).unwrap();
    let (meta, records) = read_path(&path).unwrap();
    assert_eq!(meta.pre_roll as usize, live.pre_roll);
    assert_eq!(records.len(), live.records.len());
    assert!(
        records.iter().zip(&live.records).all(|(a, b)| a.bits_eq(b)),
        "file round-trip must be bit-identical"
    );

    let replayed = harness
        .replay(&mut NoControl, &records, meta.pre_roll as usize)
        .unwrap();
    assert_eq!(
        live.result, replayed,
        "replaying the persisted trace must reproduce the live metrics"
    );
    // The batch-runner replay entry point agrees, and with no controller
    // both legs are the same replayed result.
    let point = SweepPoint {
        benchmark: Benchmark::Mcf,
        pdn_pct: 150.0,
        monitor_terms: 13,
        controller: didt_bench::ControllerSpec::None,
    };
    let run = didt_bench::RunParams {
        instructions: 3_000,
        warmup_cycles: 800,
    };
    let pr = ctx
        .run_replay(&point, run, &records, meta.pre_roll as usize)
        .unwrap();
    assert_eq!(pr.baseline, live.result);
    assert_eq!(pr.controlled, live.result);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clustering_is_deterministic_and_chunking_invariant() {
    let records = capture_records(
        Benchmark::Swim,
        &didt_uarch::ProcessorConfig::default(),
        0xD1D7_2004,
        1_000,
        16_384,
    );
    let cfg = PhaseConfig {
        interval: 512,
        clusters: 4,
        levels: 3,
        ..PhaseConfig::default()
    };
    let a = cluster_records(&records, &cfg).unwrap();
    let b = cluster_records(&records, &cfg).unwrap();
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.representatives, b.representatives);
    assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    for (ca, cb) in a.centroids.iter().zip(&b.centroids) {
        for (x, y) in ca.iter().zip(cb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    // Weights are a probability distribution over representatives.
    let total: f64 = a.representatives.iter().map(|r| r.weight).sum();
    assert!((total - 1.0).abs() < 1e-12, "weights sum to {total}");

    // Chunk size is a storage choice, never a semantic one: the same
    // records through two differently-chunked files cluster identically.
    let meta = TraceMeta::new(RecordKind::Full, "swim");
    let mut files = Vec::new();
    for chunk in [64usize, 5_000] {
        let mut w = TraceWriter::with_chunk_records(Vec::new(), &meta, chunk).unwrap();
        for r in records.iter() {
            w.push(*r).unwrap();
        }
        files.push(w.finish().unwrap());
    }
    assert_ne!(
        files[0].len(),
        files[1].len(),
        "chunkings should differ on the wire"
    );
    let (_, ra) = didt_trace::read_all(&files[0][..]).unwrap();
    let (_, rb) = didt_trace::read_all(&files[1][..]).unwrap();
    let ca = cluster_records(&ra, &cfg).unwrap();
    let cb = cluster_records(&rb, &cfg).unwrap();
    assert_eq!(ca.assignments, cb.assignments);
    assert_eq!(ca.representatives, cb.representatives);
    assert_eq!(
        a.assignments, ca.assignments,
        "file round-trip must not move clusters"
    );
}

#[test]
fn replay_engages_a_controller_deterministically_through_a_file() {
    let ctx = SweepContext::standard().unwrap();
    let pdn = ctx.pdn(150.0).unwrap();
    let cfg = ClosedLoopConfig {
        seed: didt_bench::workload_seed(Benchmark::Gzip, 150.0),
        warmup_cycles: 800,
        instructions: 3_000,
        ..ClosedLoopConfig::standard(Benchmark::Gzip)
    };
    let harness = ClosedLoop::new(*ctx.system().processor(), *pdn, cfg);
    let live = harness.run_recording(&mut NoControl).unwrap();
    let dir = temp_dir("controller");
    let path = dir.join("gzip.dtrc");
    write_path(&path, &live.meta(), &live.records).unwrap();
    let (meta, records) = read_path(&path).unwrap();

    let point = SweepPoint {
        benchmark: Benchmark::Gzip,
        pdn_pct: 150.0,
        monitor_terms: 13,
        controller: didt_bench::ControllerSpec::WaveletThreshold {
            low: 0.975,
            high: 1.025,
            hysteresis: 0.004,
            delay: 1,
        },
    };
    let run = didt_bench::RunParams {
        instructions: 3_000,
        warmup_cycles: 800,
    };
    let x = ctx
        .run_replay(&point, run, &records, meta.pre_roll as usize)
        .unwrap();
    let y = ctx
        .run_replay(&point, run, &records, meta.pre_roll as usize)
        .unwrap();
    assert_eq!(x.baseline, y.baseline);
    assert_eq!(x.controlled, y.controlled);
    // The baseline leg of a replay is the recorded run itself.
    assert_eq!(x.baseline, live.result);
    std::fs::remove_dir_all(&dir).ok();
}
