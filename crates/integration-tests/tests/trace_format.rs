//! Spec-conformance tests for the `.dtrc` container.
//!
//! TRACE_FORMAT.md is the contract; this suite plays the independent
//! reader it calls for: [`reference`] is a second decoder implemented
//! from the document alone (bitwise CRC, no didt-trace internals), and
//! every property below runs both decoders against writer output —
//! agreement on accepts *and* rejects is what "the spec round-trips"
//! means.
//!
//! Properties pinned here:
//!
//! * bit-identical round-trips for arbitrary record contents (NaN
//!   payloads, signed zeros, infinities, subnormals) at arbitrary
//!   lengths and chunk sizes, both record kinds;
//! * chunk-boundary invisibility (any chunking decodes to the same
//!   record sequence);
//! * every strict prefix of a valid file is an error, never a panic or
//!   a silent partial answer;
//! * any single corrupted byte is detected by both decoders;
//! * a header `pre_roll` beyond the file's record count is rejected.

use didt_trace::{read_all, Record, RecordKind, TraceMeta, TraceWriter};
use proptest::prelude::*;

/// An independent `.dtrc` decoder implemented from TRACE_FORMAT.md
/// alone. Everything here — CRC, header walk, varbyte columns — is
/// deliberately written against the document's tables, not against
/// `didt_trace`'s source, and shares no code with it.
mod reference {
    /// CRC-32/ISO-HDLC, bitwise (no table): reflected poly 0xEDB88320,
    /// init 0xFFFFFFFF, final XOR 0xFFFFFFFF (TRACE_FORMAT.md §0).
    pub fn crc32(data: &[u8]) -> u32 {
        let mut state = 0xFFFF_FFFFu32;
        for &byte in data {
            state ^= u32::from(byte);
            for _ in 0..8 {
                state = if state & 1 != 0 {
                    (state >> 1) ^ 0xEDB8_8320
                } else {
                    state >> 1
                };
            }
        }
        state ^ 0xFFFF_FFFF
    }

    /// A decoded record as raw wire values (f64s kept as bit patterns
    /// so comparisons are exact by construction).
    #[derive(Debug, PartialEq, Eq, Clone, Copy, Default)]
    pub struct RawRecord {
        pub current_bits: u64,
        pub power_bits: u64,
        pub committed: u16,
        pub l2_misses: u16,
        pub mispredicts: u16,
    }

    #[derive(Debug)]
    pub struct Decoded {
        pub record_kind: u16,
        pub seed: u64,
        pub discarded_warmup: u64,
        pub pre_roll: u64,
        pub name: String,
        pub records: Vec<RawRecord>,
    }

    /// A cursor over the byte stream; every read is bounds-checked so
    /// truncation surfaces as `Err`, never a panic.
    struct Cur<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Cur<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            if self.pos + n > self.bytes.len() {
                return Err(format!("truncated at offset {}", self.pos));
            }
            let s = &self.bytes[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }
        fn u16(&mut self) -> Result<u16, String> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
        }
        fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }
        fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
    }

    /// §5 f64 column: XOR-delta varbyte, predictor reset per column.
    fn f64_column(cur: &mut Cur, count: usize) -> Result<Vec<u64>, String> {
        let mut prev = 0u64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let n = cur.take(1)?[0];
            if n > 8 {
                return Err(format!("control byte {n} > 8"));
            }
            let mut x = 0u64;
            for (i, &b) in cur.take(n as usize)?.iter().enumerate() {
                x |= u64::from(b) << (8 * i);
            }
            prev ^= x;
            out.push(prev);
        }
        Ok(out)
    }

    /// Decode one whole file per TRACE_FORMAT.md §§1–7. Every MUST in
    /// the document is an `Err` here.
    pub fn decode(bytes: &[u8]) -> Result<Decoded, String> {
        let mut cur = Cur { bytes, pos: 0 };
        // §2 header.
        if cur.take(4)? != b"DTRC" {
            return Err("bad magic".into());
        }
        let version = cur.u16()?;
        if version != 1 {
            return Err(format!("unsupported version {version}"));
        }
        let record_kind = cur.u16()?;
        if record_kind != 1 && record_kind != 2 {
            return Err(format!("unsupported record kind {record_kind}"));
        }
        let seed = cur.u64()?;
        let discarded_warmup = cur.u64()?;
        let pre_roll = cur.u64()?;
        let name_len = cur.take(1)?[0] as usize;
        let name = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|_| "name is not UTF-8".to_string())?;
        let header_end = cur.pos;
        if cur.u32()? != crc32(&bytes[..header_end]) {
            return Err("header CRC mismatch".into());
        }
        // §4 chunks.
        let (lw, nf) = if record_kind == 1 { (8, 1) } else { (24, 2) };
        let mut records = Vec::new();
        loop {
            let chunk_start = cur.pos;
            let record_count = cur.u32()? as usize;
            let payload_len = cur.u32()? as usize;
            if record_count == 0 {
                // End chunk: payload is exactly total_records:u64.
                if payload_len != 8 {
                    return Err(format!("end chunk payload_len {payload_len} != 8"));
                }
                let total = cur.u64()?;
                let crc = cur.u32()?;
                if crc != crc32(&bytes[chunk_start..chunk_start + 16]) {
                    return Err("end chunk CRC mismatch".into());
                }
                if total != records.len() as u64 {
                    return Err(format!("total {total} != {} decoded", records.len()));
                }
                if pre_roll > total {
                    return Err(format!("pre_roll {pre_roll} > total {total}"));
                }
                if cur.pos != bytes.len() {
                    return Err("trailing data after end chunk".into());
                }
                return Ok(Decoded {
                    record_kind,
                    seed,
                    discarded_warmup,
                    pre_roll,
                    name,
                    records,
                });
            }
            if record_count > 1_048_576 {
                return Err(format!("record_count {record_count} above cap"));
            }
            if payload_len > record_count * (lw + nf) {
                return Err(format!("payload_len {payload_len} above bound"));
            }
            let payload_end = cur.pos + payload_len;
            if payload_end > bytes.len() {
                return Err("truncated payload".into());
            }
            // §4: CRC over the 8 prefix bytes plus the payload.
            let mut pcur = Cur {
                bytes: &bytes[..payload_end],
                pos: cur.pos,
            };
            cur.pos = payload_end;
            if cur.u32()? != crc32(&bytes[chunk_start..payload_end]) {
                return Err("chunk CRC mismatch".into());
            }
            // §5 column-major payload in §3 field order.
            let currents = f64_column(&mut pcur, record_count)?;
            let powers = if record_kind == 2 {
                f64_column(&mut pcur, record_count)?
            } else {
                vec![0u64; record_count]
            };
            let mut u16_col =
                |n: usize| -> Result<Vec<u16>, String> { (0..n).map(|_| pcur.u16()).collect() };
            let (committed, l2, misp) = if record_kind == 2 {
                (
                    u16_col(record_count)?,
                    u16_col(record_count)?,
                    u16_col(record_count)?,
                )
            } else {
                let z = vec![0u16; record_count];
                (z.clone(), z.clone(), z)
            };
            if pcur.pos != payload_end {
                return Err("payload has trailing bytes".into());
            }
            for i in 0..record_count {
                records.push(RawRecord {
                    current_bits: currents[i],
                    power_bits: powers[i],
                    committed: committed[i],
                    l2_misses: l2[i],
                    mispredicts: misp[i],
                });
            }
        }
    }
}

/// Bit patterns the varbyte codec must transport unchanged: quiet NaN
/// with payload, signaling-style NaN, ±0.0, ±inf, subnormals, extremes.
const SPECIAL_BITS: &[u64] = &[
    0x7FF8_0000_0000_0001,
    0x7FF0_0000_0000_0001,
    0xFFF8_DEAD_BEEF_CAFE,
    0x0000_0000_0000_0000,
    0x8000_0000_0000_0000,
    0x7FF0_0000_0000_0000,
    0xFFF0_0000_0000_0000,
    0x0000_0000_0000_0001,
    0x000F_FFFF_FFFF_FFFF,
    0x7FEF_FFFF_FFFF_FFFF,
];

fn meta(kind: RecordKind) -> TraceMeta {
    let mut m = TraceMeta::new(kind, "proptest");
    m.seed = 0x5EED;
    m.discarded_warmup = 7;
    m
}

/// Encode `records` with the library writer at the given chunking.
fn encode(records: &[Record], kind: RecordKind, chunk: usize) -> Vec<u8> {
    let mut w = TraceWriter::with_chunk_records(Vec::new(), &meta(kind), chunk).unwrap();
    for r in records {
        w.push(*r).unwrap();
    }
    w.finish().unwrap()
}

fn full_records(bits: &[(u64, u64, u16, u16, u16)]) -> Vec<Record> {
    bits.iter()
        .map(|&(c, p, co, l2, mi)| Record {
            current: f64::from_bits(c),
            power: f64::from_bits(p),
            committed: co,
            l2_misses: l2,
            mispredicts: mi,
        })
        .collect()
}

/// Inject the special bit patterns over the leading records so every
/// case exercises them (the random tail covers the general field).
fn with_specials(mut raw: Vec<(u64, u64, u16, u16, u16)>) -> Vec<(u64, u64, u16, u16, u16)> {
    for (i, r) in raw.iter_mut().enumerate() {
        if i < SPECIAL_BITS.len() {
            r.0 = SPECIAL_BITS[i];
            r.1 = SPECIAL_BITS[SPECIAL_BITS.len() - 1 - i];
        }
    }
    raw
}

fn assert_both_decoders_agree(bytes: &[u8], want: &[Record], kind: RecordKind) {
    // Library reader: bit-identical records plus metadata.
    let (got_meta, got) = read_all(bytes).unwrap();
    assert_eq!(got_meta, meta(kind));
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want) {
        assert!(a.bits_eq(b), "library decode differs: {a:?} vs {b:?}");
    }
    // Reference decoder, from the spec alone: same bits, same meta.
    let dec = reference::decode(bytes).unwrap();
    assert_eq!(dec.record_kind, kind.to_wire());
    assert_eq!(dec.seed, 0x5EED);
    assert_eq!(dec.discarded_warmup, 7);
    assert_eq!(dec.pre_roll, 0);
    assert_eq!(dec.name, "proptest");
    assert_eq!(dec.records.len(), want.len());
    for (a, b) in dec.records.iter().zip(want) {
        assert_eq!(a.current_bits, b.current.to_bits());
        assert_eq!(a.power_bits, b.power.to_bits());
        assert_eq!(
            (a.committed, a.l2_misses, a.mispredicts),
            (b.committed, b.l2_misses, b.mispredicts)
        );
    }
}

proptest! {
    /// Arbitrary full records at arbitrary lengths and chunk sizes:
    /// both decoders accept and return bit-identical records.
    #[test]
    fn full_round_trip_is_bit_identical_for_both_decoders(
        raw in prop::collection::vec(
            ((0u64..=u64::MAX - 1, 0u64..=u64::MAX - 1),
             (0u16..=u16::MAX, 0u16..=u16::MAX, 0u16..=u16::MAX)),
            0..=200,
        ),
        chunk in 1usize..=64,
    ) {
        let raw = raw.into_iter().map(|((c, p), (co, l2, mi))| (c, p, co, l2, mi)).collect();
        let records = full_records(&with_specials(raw));
        let bytes = encode(&records, RecordKind::Full, chunk);
        assert_both_decoders_agree(&bytes, &records, RecordKind::Full);
    }

    /// Kind-1 (current-only) files round-trip the same way.
    #[test]
    fn current_only_round_trip_is_bit_identical(
        bits in prop::collection::vec(0u64..=u64::MAX - 1, 0..=200),
        chunk in 1usize..=64,
    ) {
        let mut bits = bits;
        for (i, b) in bits.iter_mut().enumerate() {
            if i < SPECIAL_BITS.len() {
                *b = SPECIAL_BITS[i];
            }
        }
        let records: Vec<Record> = bits
            .iter()
            .map(|&b| Record::current_only(f64::from_bits(b)))
            .collect();
        let bytes = encode(&records, RecordKind::Current, chunk);
        assert_both_decoders_agree(&bytes, &records, RecordKind::Current);
    }

    /// §4: chunk boundaries are semantically invisible — any two
    /// chunkings of the same records decode identically.
    #[test]
    fn chunking_is_semantically_invisible(
        raw in prop::collection::vec(
            ((0u64..=u64::MAX - 1, 0u64..=u64::MAX - 1),
             (0u16..=u16::MAX, 0u16..=u16::MAX, 0u16..=u16::MAX)),
            1..=120,
        ),
        chunk_a in 1usize..=50,
        chunk_b in 51usize..=200,
    ) {
        let raw = raw.into_iter().map(|((c, p), (co, l2, mi))| (c, p, co, l2, mi)).collect();
        let records = full_records(&with_specials(raw));
        let a = encode(&records, RecordKind::Full, chunk_a);
        let b = encode(&records, RecordKind::Full, chunk_b);
        let (_, ra) = read_all(&a[..]).unwrap();
        let (_, rb) = read_all(&b[..]).unwrap();
        prop_assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            prop_assert!(x.bits_eq(y));
        }
        prop_assert_eq!(reference::decode(&a).unwrap().records,
                        reference::decode(&b).unwrap().records);
    }

    /// §4: EOF before a complete end chunk is an error in every strict
    /// prefix — both decoders, no panics, no partial acceptance.
    #[test]
    fn every_strict_prefix_is_rejected(
        raw in prop::collection::vec(
            ((0u64..=u64::MAX - 1, 0u64..=u64::MAX - 1),
             (0u16..=u16::MAX, 0u16..=u16::MAX, 0u16..=u16::MAX)),
            0..=40,
        ),
        chunk in 1usize..=16,
        cut_frac in 0.0f64..1.0,
    ) {
        let raw = raw.into_iter().map(|((c, p), (co, l2, mi))| (c, p, co, l2, mi)).collect();
        let records = full_records(&with_specials(raw));
        let bytes = encode(&records, RecordKind::Full, chunk);
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // < len
        prop_assert!(read_all(&bytes[..cut]).is_err());
        prop_assert!(reference::decode(&bytes[..cut]).is_err());
    }

    /// §0: any single corrupted byte is detected — every byte of the
    /// file is under the header CRC, a chunk CRC, or is a CRC itself.
    #[test]
    fn any_single_corrupt_byte_is_detected(
        raw in prop::collection::vec(
            ((0u64..=u64::MAX - 1, 0u64..=u64::MAX - 1),
             (0u16..=u16::MAX, 0u16..=u16::MAX, 0u16..=u16::MAX)),
            1..=40,
        ),
        chunk in 1usize..=16,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let raw = raw.into_iter().map(|((c, p), (co, l2, mi))| (c, p, co, l2, mi)).collect();
        let records = full_records(&with_specials(raw));
        let mut bytes = encode(&records, RecordKind::Full, chunk);
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(read_all(&bytes[..]).is_err(), "byte {pos} xor {flip:#04x}");
        prop_assert!(reference::decode(&bytes).is_err(), "byte {pos} xor {flip:#04x}");
    }
}

#[test]
fn trailing_bytes_after_end_chunk_are_rejected() {
    let records = vec![Record::current_only(1.5); 9];
    let mut bytes = encode(&records, RecordKind::Current, 4);
    bytes.push(0);
    assert!(read_all(&bytes[..]).is_err());
    assert!(reference::decode(&bytes).is_err());
}

#[test]
fn pre_roll_beyond_total_records_is_rejected() {
    let mut m = meta(RecordKind::Current);
    m.pre_roll = 5;
    let mut w = TraceWriter::with_chunk_records(Vec::new(), &m, 8).unwrap();
    for _ in 0..3 {
        w.push(Record::current_only(2.0)).unwrap();
    }
    let bytes = w.finish().unwrap();
    assert!(
        read_all(&bytes[..]).is_err(),
        "library must reject pre_roll 5 > total 3"
    );
    assert!(reference::decode(&bytes).is_err());

    // The boundary case pre_roll == total is valid and round-trips.
    m.pre_roll = 3;
    let mut w = TraceWriter::with_chunk_records(Vec::new(), &m, 8).unwrap();
    for _ in 0..3 {
        w.push(Record::current_only(2.0)).unwrap();
    }
    let bytes = w.finish().unwrap();
    let (got_meta, got) = read_all(&bytes[..]).unwrap();
    assert_eq!(got_meta.pre_roll, 3);
    assert_eq!(got.len(), 3);
    let dec = reference::decode(&bytes).unwrap();
    assert_eq!(dec.pre_roll, 3);
}

#[test]
fn empty_trace_round_trips() {
    let bytes = encode(&[], RecordKind::Full, 4);
    assert_both_decoders_agree(&bytes, &[], RecordKind::Full);
}
