//! Test-only workspace member.
//!
//! This crate exists to own the cross-crate integration suites under
//! `tests/`: the four end-to-end pipelines adopted from the repository
//! root (which the virtual workspace manifest used to reach through
//! `[[test]]` path entries in `didt-bench`), the golden-number
//! regression suite for the figure/table experiments, and the
//! experiment-runner determinism tests. It has no library code.
