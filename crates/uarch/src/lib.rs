#![warn(missing_docs)]
//! Cycle-level out-of-order processor simulation with a Wattch-style
//! power model and synthetic SPEC CPU2000 workloads.
//!
//! This crate is the microarchitectural substrate of the wavelet dI/dt
//! reproduction: it plays the role Wattch/SimpleScalar played for the
//! paper (§3.2), producing per-cycle current traces for the 26 SPEC
//! benchmarks on the Table 1 machine.
//!
//! * [`ProcessorConfig`] — the paper's Table 1 parameters
//!   ([`ProcessorConfig::table1`]).
//! * [`Processor`] — 4-wide out-of-order core: 80-entry RUU, 40-entry
//!   LSQ, combined branch predictor, two-level cache hierarchy, per-cycle
//!   [`pipeline::ControlAction`] hook for dI/dt control.
//! * [`PowerModel`] — Wattch-style per-unit activity energies; per-cycle
//!   current is power / Vdd.
//! * [`Benchmark`] / [`WorkloadGenerator`] — statistical profiles of the
//!   26 SPEC CPU2000 benchmarks (see DESIGN.md for the substitution
//!   rationale) generating deterministic instruction streams.
//! * [`capture_trace`] — run a benchmark, capture its current trace.
//!
//! # Examples
//!
//! ```
//! use didt_uarch::{capture_trace, Benchmark, ProcessorConfig};
//!
//! let trace = capture_trace(Benchmark::Mcf, &ProcessorConfig::table1(), 42, 1_000, 2_048);
//! // Memory-bound mcf alternates stalls and bursts.
//! let min = trace.samples.iter().copied().fold(f64::INFINITY, f64::min);
//! let max = trace.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
//! assert!(max > min);
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod op;
pub mod pipeline;
pub mod power;
pub mod trace;
pub mod workload;

pub use config::{CacheConfig, FunctionalUnits, PredictorConfig, ProcessorConfig};
pub use op::{MicroOp, OpClass};
pub use pipeline::{BatchOutput, ControlAction, CycleOutput, Processor, SimStats};
pub use power::{CycleActivity, PowerModel};
pub use trace::{capture_trace, capture_trace_with_events, CurrentTrace, EventTrace};
pub use workload::{
    Benchmark, OpMix, ParseBenchmarkError, Suite, WorkloadGenerator, WorkloadProfile,
};
