//! Set-associative caches with true-LRU replacement, and the two-level
//! hierarchy of paper Table 1.

use crate::config::CacheConfig;

/// Where a memory access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessLevel {
    /// Hit in the L1 cache.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both caches; serviced by main memory.
    Memory,
}

/// A set-associative cache with true-LRU replacement.
///
/// Tag-array only (no data), which is all a timing/power simulator needs.
///
/// # Examples
///
/// ```
/// use didt_uarch::cache::Cache;
/// use didt_uarch::CacheConfig;
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 1024, associativity: 2, line_bytes: 64, latency: 3,
/// });
/// assert!(!c.access(0x40));   // cold miss
/// assert!(c.access(0x40));    // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * assoc + way]`; u64::MAX = invalid.
    tags: Vec<u64>,
    /// LRU ordering per set: `lru[set * assoc + rank]` = way index,
    /// rank 0 = most recently used.
    lru: Vec<u8>,
    set_mask: u64,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate (zero sizes, non-power-of-
    /// two sets/lines, or associativity above 255).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.associativity > 0 && config.associativity <= 255);
        Cache {
            config,
            tags: vec![u64::MAX; sets * config.associativity],
            lru: (0..sets * config.associativity)
                .map(|i| (i % config.associativity) as u8)
                .collect(),
            set_mask: (sets - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry of this cache.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access `addr`; returns `true` on hit. Misses allocate (the line is
    /// brought in, evicting the LRU way).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let assoc = self.config.associativity;
        let base = set * assoc;
        // MRU fast path: most accesses re-touch the most recent line in
        // the set, where the LRU rotation is a no-op — skip the scans.
        let mru_way = self.lru[base] as usize;
        if self.tags[base + mru_way] == line {
            self.hits += 1;
            return true;
        }
        let tags = &mut self.tags[base..base + assoc];
        let lru = &mut self.lru[base..base + assoc];
        if let Some(way) = tags.iter().position(|&t| t == line) {
            // Move this way to MRU position.
            let rank = lru
                .iter()
                .position(|&w| w as usize == way)
                .expect("way in lru");
            lru[..=rank].rotate_right(1);
            lru[0] = way as u8;
            self.hits += 1;
            true
        } else {
            // Evict the LRU way (last rank).
            let victim = lru[assoc - 1];
            tags[victim as usize] = line;
            lru.rotate_right(1);
            lru[0] = victim;
            self.misses += 1;
            false
        }
    }

    /// Hits observed so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0 when never accessed).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Invalidate all lines and zero the statistics. Also restores the
    /// LRU rank order of every set to the as-built state, so a recycled
    /// cache is indistinguishable from a fresh `Cache::new`.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        let assoc = self.config.associativity;
        for (i, rank) in self.lru.iter_mut().enumerate() {
            *rank = (i % assoc) as u8;
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// How many lines the stream prefetcher pulls ahead per trigger.
const STREAM_PREFETCH_DEGREE: u64 = 8;

/// An L1 + unified-L2 + memory hierarchy for one access stream, with a
/// tagged sequential stream prefetcher: two consecutive line misses
/// launch a stream that runs ahead of the demand accesses, re-armed each
/// time the demand stream reaches a trigger line. Strided array sweeps
/// become cheap (as on real hardware with stream engines); pointer
/// chasing and random accesses still pay full memory latency.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    memory_latency: u32,
    prefetch: bool,
    last_miss_line: u64,
    stream_trigger: u64,
    stream_next: u64,
    /// Hoisted L1 line geometry, so the hot access path does no
    /// per-call `trailing_zeros` recomputation.
    line_shift: u32,
    line_bytes: u64,
}

impl Hierarchy {
    /// Build a hierarchy from L1/L2 geometry and memory latency, with the
    /// stream prefetcher enabled.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig, memory_latency: u32) -> Self {
        Hierarchy {
            line_shift: l1.line_bytes.trailing_zeros(),
            line_bytes: l1.line_bytes as u64,
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            memory_latency,
            prefetch: true,
            last_miss_line: u64::MAX - 1,
            stream_trigger: u64::MAX,
            stream_next: u64::MAX,
        }
    }

    /// Enable or disable the stream prefetcher.
    pub fn set_prefetch(&mut self, enabled: bool) {
        self.prefetch = enabled;
    }

    /// Pull `STREAM_PREFETCH_DEGREE` lines starting at `stream_next` into
    /// both cache levels and advance the trigger.
    fn prefetch_ahead(&mut self) {
        let line_bytes = self.line_bytes;
        for k in 0..STREAM_PREFETCH_DEGREE {
            let addr = (self.stream_next + k) * line_bytes;
            if !self.l1.access(addr) {
                self.l2.access(addr);
            }
        }
        self.stream_next += STREAM_PREFETCH_DEGREE;
        // Re-arm the trigger a few lines before the prefetched frontier.
        self.stream_trigger = self.stream_next - 2;
    }

    /// Access `addr`, returning where it hit and the total latency.
    pub fn access(&mut self, addr: u64) -> (AccessLevel, u32) {
        let line = addr >> self.line_shift;
        let result = if self.l1.access(addr) {
            (AccessLevel::L1, self.l1.config().latency)
        } else if self.l2.access(addr) {
            (
                AccessLevel::L2,
                self.l1.config().latency + self.l2.config().latency,
            )
        } else {
            (
                AccessLevel::Memory,
                self.l1.config().latency + self.l2.config().latency + self.memory_latency,
            )
        };
        if self.prefetch {
            if result.0 == AccessLevel::L1 {
                if line == self.stream_trigger {
                    self.prefetch_ahead();
                }
            } else {
                if line == self.last_miss_line.wrapping_add(1) {
                    // Two sequential line misses: launch the stream.
                    self.stream_next = line + 1;
                    self.prefetch_ahead();
                }
                self.last_miss_line = line;
            }
        }
        result
    }

    /// The L1 cache.
    #[must_use]
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache.
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Invalidate everything, zero statistics, and disarm the stream
    /// prefetcher — bit-identical to a freshly built hierarchy (the
    /// prefetch enable flag is configuration and is left as set).
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.last_miss_line = u64::MAX - 1;
        self.stream_trigger = u64::MAX;
        self.stream_next = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            associativity: 2,
            line_bytes: 64,
            latency: 3,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(small());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1010)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way: fill a set with A, B; touch A; insert C → B evicted.
        let mut c = Cache::new(small());
        let sets = small().sets() as u64; // 8 sets
        let line = 64u64;
        let a = 0;
        let b = a + sets * line; // same set, different tag
        let cc = b + sets * line;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // A is MRU, B is LRU
        assert!(!c.access(cc)); // evicts B
        assert!(c.access(a)); // A still resident
        assert!(!c.access(b)); // B was evicted
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = Cache::new(small());
        let lines = small().size_bytes / small().line_bytes; // 16 lines
        for pass in 0..3 {
            for i in 0..lines as u64 {
                let hit = c.access(i * 64);
                if pass > 0 {
                    assert!(hit, "pass {pass}, line {i}");
                }
            }
        }
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        let mut c = Cache::new(small());
        let lines = 4 * small().size_bytes / small().line_bytes;
        for _ in 0..3 {
            for i in 0..lines as u64 {
                c.access(i * 64);
            }
        }
        // Sequential sweep of 4× capacity with LRU: everything misses
        // after the first pass too.
        assert!(c.miss_rate() > 0.9, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn reset_clears() {
        let mut c = Cache::new(small());
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn hierarchy_latencies() {
        let l2cfg = CacheConfig {
            size_bytes: 4096,
            associativity: 4,
            line_bytes: 64,
            latency: 16,
        };
        let mut h = Hierarchy::new(small(), l2cfg, 250);
        let (lvl, lat) = h.access(0x8000);
        assert_eq!(lvl, AccessLevel::Memory);
        assert_eq!(lat, 3 + 16 + 250);
        let (lvl, lat) = h.access(0x8000);
        assert_eq!(lvl, AccessLevel::L1);
        assert_eq!(lat, 3);
    }

    #[test]
    fn hierarchy_l2_hit_after_l1_eviction() {
        // Thrash L1 with a working set that fits in L2.
        let l2cfg = CacheConfig {
            size_bytes: 16 * 1024,
            associativity: 4,
            line_bytes: 64,
            latency: 16,
        };
        let mut h = Hierarchy::new(small(), l2cfg, 250);
        let lines = 64u64; // 4 KB working set: 4× L1, fits L2
        for _ in 0..2 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        // Second pass should have been L2 hits, not memory.
        let (lvl, _) = h.access(0);
        assert_ne!(lvl, AccessLevel::Memory);
    }

    #[test]
    fn stream_prefetcher_covers_sequential_sweeps() {
        let l2cfg = CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            associativity: 4,
            line_bytes: 64,
            latency: 16,
        };
        let mut h = Hierarchy::new(small(), l2cfg, 250);
        // Sequential sweep far beyond both caches: after the stream is
        // detected (two line misses), nearly everything hits.
        let mut mem_misses = 0;
        for line in 0..4096u64 {
            for word in 0..8u64 {
                let (lvl, _) = h.access(0x4000_0000 + line * 64 + word * 8);
                if lvl == AccessLevel::Memory {
                    mem_misses += 1;
                }
            }
        }
        assert!(
            mem_misses < 40,
            "memory misses {mem_misses} on a pure stream"
        );
    }

    #[test]
    fn prefetcher_ignores_random_accesses() {
        let l2cfg = CacheConfig {
            size_bytes: 64 * 1024,
            associativity: 4,
            line_bytes: 64,
            latency: 16,
        };
        let mut on = Hierarchy::new(small(), l2cfg, 250);
        let mut off = Hierarchy::new(small(), l2cfg, 250);
        off.set_prefetch(false);
        // Pseudo-random lines over a region 64x the L2: prefetching can't
        // help, and must not make things worse.
        let mut state = 7u64;
        let mut misses = (0u64, 0u64);
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = 0x8000_0000 + (state % 65_536) * 64;
            if on.access(addr).0 == AccessLevel::Memory {
                misses.0 += 1;
            }
            if off.access(addr).0 == AccessLevel::Memory {
                misses.1 += 1;
            }
        }
        let ratio = misses.0 as f64 / misses.1.max(1) as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "prefetch changed random-miss rate: {ratio}"
        );
    }

    #[test]
    fn hierarchy_reset_matches_fresh() {
        let l2cfg = CacheConfig {
            size_bytes: 64 * 1024,
            associativity: 4,
            line_bytes: 64,
            latency: 16,
        };
        let mut h = Hierarchy::new(small(), l2cfg, 250);
        // Launch a prefetch stream and dirty both levels...
        for line in 0..256u64 {
            h.access(0x4000_0000 + line * 64);
        }
        h.reset();
        // ...then the recycled hierarchy must replay exactly like new,
        // including the (re-disarmed) stream prefetcher.
        let mut fresh = Hierarchy::new(small(), l2cfg, 250);
        for line in 0..256u64 {
            let addr = 0x4000_0000 + line * 64;
            assert_eq!(h.access(addr), fresh.access(addr), "line {line}");
        }
        assert_eq!(h.l1().misses(), fresh.l1().misses());
        assert_eq!(h.l2().misses(), fresh.l2().misses());
    }

    #[test]
    fn miss_rate_bounds() {
        let mut c = Cache::new(small());
        assert_eq!(c.miss_rate(), 0.0);
        c.access(0);
        assert_eq!(c.miss_rate(), 1.0);
    }
}
