//! Branch prediction: the paper's combined predictor (Table 1).
//!
//! A 4 K-entry bimodal table and a 4 K-entry gshare with 12 bits of
//! global history, arbitrated by a 4 K-entry chooser, plus a 1 K-entry
//! 2-way BTB and a 32-entry return-address stack. The RAS is modeled for
//! completeness though the synthetic workloads exercise conditional
//! branches predominantly.

use crate::config::PredictorConfig;

/// Saturating 2-bit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// The combined bimodal/gshare predictor with chooser, BTB and RAS.
///
/// # Examples
///
/// ```
/// use didt_uarch::branch::BranchPredictor;
/// use didt_uarch::ProcessorConfig;
///
/// let mut bp = BranchPredictor::new(ProcessorConfig::table1().predictor);
/// // An always-taken branch trains quickly.
/// for _ in 0..8 {
///     let pred = bp.predict(0x400);
///     bp.update(0x400, true, pred);
/// }
/// assert!(bp.predict(0x400));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<Counter2>,
    gshare: Vec<Counter2>,
    /// Chooser counters: >= 2 selects gshare.
    chooser: Vec<Counter2>,
    history: u64,
    history_mask: u64,
    btb_tags: Vec<u64>,
    btb_ways: usize,
    /// Hoisted `btb_tags.len() / btb_ways`, so the hot BTB paths do no
    /// per-call division.
    btb_sets: usize,
    ras: Vec<u64>,
    ras_capacity: usize,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Build the predictor from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero or not a power of two.
    #[must_use]
    pub fn new(cfg: PredictorConfig) -> Self {
        for (name, n) in [
            ("bimodal_entries", cfg.bimodal_entries),
            ("gshare_entries", cfg.gshare_entries),
            ("chooser_entries", cfg.chooser_entries),
            ("btb_entries", cfg.btb_entries),
        ] {
            assert!(
                n > 0 && n.is_power_of_two(),
                "{name} must be a power of two"
            );
        }
        // Counters start weakly taken (most branches are loop back-edges)
        // and the chooser starts on bimodal, which trains in two
        // encounters per site; it migrates to gshare where history helps.
        BranchPredictor {
            bimodal: vec![Counter2(2); cfg.bimodal_entries],
            gshare: vec![Counter2(2); cfg.gshare_entries],
            chooser: vec![Counter2(1); cfg.chooser_entries],
            history: 0,
            history_mask: (1u64 << cfg.gshare_history_bits) - 1,
            btb_tags: vec![u64::MAX; cfg.btb_entries],
            btb_ways: cfg.btb_ways,
            btb_sets: cfg.btb_entries / cfg.btb_ways,
            ras: Vec::with_capacity(cfg.ras_entries),
            ras_capacity: cfg.ras_entries,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.bimodal.len() - 1)
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.history_mask) as usize & (self.gshare.len() - 1)
    }

    fn chooser_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.chooser.len() - 1)
    }

    /// Predict the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        let use_gshare = self.chooser[self.chooser_index(pc)].predict();
        if use_gshare {
            self.gshare[self.gshare_index(pc)].predict()
        } else {
            self.bimodal[self.bimodal_index(pc)].predict()
        }
    }

    /// Predict the branch at `pc` and immediately train with the actual
    /// outcome — the fused form of [`BranchPredictor::predict`] followed
    /// by [`BranchPredictor::update`], computing each table index once.
    /// Returns the prediction, and is bit-identical to the split calls
    /// (the pipeline's fetch stage always predicts and trains
    /// back-to-back).
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let bi = self.bimodal_index(pc);
        let gi = self.gshare_index(pc);
        let ci = self.chooser_index(pc);
        let bimodal_pred = self.bimodal[bi].predict();
        let gshare_pred = self.gshare[gi].predict();
        let predicted = if self.chooser[ci].predict() {
            gshare_pred
        } else {
            bimodal_pred
        };
        self.lookups += 1;
        if predicted != taken {
            self.mispredicts += 1;
        }
        let bimodal_correct = bimodal_pred == taken;
        let gshare_correct = gshare_pred == taken;
        // Chooser trains toward whichever component was right.
        if gshare_correct != bimodal_correct {
            self.chooser[ci].update(gshare_correct);
        }
        self.bimodal[bi].update(taken);
        self.gshare[gi].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        predicted
    }

    /// Train with the actual outcome; `predicted` must be the direction
    /// returned by the matching [`BranchPredictor::predict`] call so the
    /// misprediction statistics stay truthful.
    pub fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        self.lookups += 1;
        if predicted != taken {
            self.mispredicts += 1;
        }
        let bi = self.bimodal_index(pc);
        let gi = self.gshare_index(pc);
        let ci = self.chooser_index(pc);
        let bimodal_correct = self.bimodal[bi].predict() == taken;
        let gshare_correct = self.gshare[gi].predict() == taken;
        // Chooser trains toward whichever component was right.
        if gshare_correct != bimodal_correct {
            self.chooser[ci].update(gshare_correct);
        }
        self.bimodal[bi].update(taken);
        self.gshare[gi].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }

    /// Look up the target for `pc` in the BTB; `true` means the target is
    /// known (taken branches with a BTB miss still pay a redirect).
    pub fn btb_lookup(&mut self, pc: u64) -> bool {
        let set = (pc >> 2) as usize & (self.btb_sets - 1);
        let base = set * self.btb_ways;
        let ways = &mut self.btb_tags[base..base + self.btb_ways];
        if let Some(pos) = ways.iter().position(|&t| t == pc) {
            // Move to MRU (front).
            ways[..=pos].rotate_right(1);
            ways[0] = pc;
            true
        } else {
            false
        }
    }

    /// Install `pc` into the BTB (called for taken branches).
    pub fn btb_insert(&mut self, pc: u64) {
        let set = (pc >> 2) as usize & (self.btb_sets - 1);
        let base = set * self.btb_ways;
        let ways = &mut self.btb_tags[base..base + self.btb_ways];
        if !ways.contains(&pc) {
            ways.rotate_right(1);
            ways[0] = pc;
        }
    }

    /// Push a return address onto the RAS (on simulated calls).
    pub fn ras_push(&mut self, addr: u64) {
        if self.ras.len() == self.ras_capacity {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    /// Pop a return address (on simulated returns).
    pub fn ras_pop(&mut self) -> Option<u64> {
        self.ras.pop()
    }

    /// Branches observed.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredicted branches.
    #[must_use]
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Rewind every table, the history register, the BTB, the RAS and
    /// the statistics to the as-built state — bit-identical to a fresh
    /// `BranchPredictor::new` with the same configuration, reusing the
    /// table allocations (the processor-recycle path depends on this).
    pub fn reset(&mut self) {
        self.bimodal.fill(Counter2(2));
        self.gshare.fill(Counter2(2));
        self.chooser.fill(Counter2(1));
        self.history = 0;
        self.btb_tags.fill(u64::MAX);
        self.ras.clear();
        self.lookups = 0;
        self.mispredicts = 0;
    }

    /// Misprediction rate (0 when no branches seen).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(ProcessorConfig::table1().predictor)
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter2(0);
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.0, 3);
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.0, 0);
    }

    #[test]
    fn learns_biased_branch() {
        let mut bp = predictor();
        for _ in 0..20 {
            let p = bp.predict(0x100);
            bp.update(0x100, true, p);
        }
        assert!(bp.predict(0x100));
        // Trained predictor is nearly perfect on the bias.
        assert!(bp.mispredict_rate() < 0.3);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // T N T N ... is hard for bimodal (counters oscillate) but easy
        // for gshare once history correlates.
        let mut bp = predictor();
        let mut correct_late = 0;
        for i in 0..4000 {
            let taken = i % 2 == 0;
            let p = bp.predict(0x200);
            if i >= 2000 && p == taken {
                correct_late += 1;
            }
            bp.update(0x200, taken, p);
        }
        assert!(
            correct_late > 1900,
            "late accuracy {correct_late}/2000 on alternating pattern"
        );
    }

    #[test]
    fn random_branches_mispredict_heavily() {
        let mut bp = predictor();
        let mut state = 0x12345u64;
        for _ in 0..4000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let taken = state & 1 == 1;
            let p = bp.predict(0x300);
            bp.update(0x300, taken, p);
        }
        assert!(bp.mispredict_rate() > 0.35, "rate {}", bp.mispredict_rate());
    }

    #[test]
    fn distinct_sites_do_not_interfere_in_bimodal() {
        let mut bp = predictor();
        // Two strongly biased sites with opposite bias.
        for _ in 0..50 {
            let p1 = bp.predict(0x1000);
            bp.update(0x1000, true, p1);
            let p2 = bp.predict(0x2000);
            bp.update(0x2000, false, p2);
        }
        assert!(bp.predict(0x1000));
        assert!(!bp.predict(0x2000));
    }

    #[test]
    fn btb_insert_then_lookup() {
        let mut bp = predictor();
        assert!(!bp.btb_lookup(0x400));
        bp.btb_insert(0x400);
        assert!(bp.btb_lookup(0x400));
    }

    #[test]
    fn btb_capacity_eviction() {
        let mut bp = predictor();
        // Fill one set (2 ways) with 3 conflicting entries.
        let sets = 1024 / 2;
        let a = 0x4u64;
        let b = a + (sets as u64) * 4;
        let c = b + (sets as u64) * 4;
        bp.btb_insert(a);
        bp.btb_insert(b);
        bp.btb_insert(c); // evicts a (LRU)
        assert!(!bp.btb_lookup(a));
        assert!(bp.btb_lookup(b));
        assert!(bp.btb_lookup(c));
    }

    #[test]
    fn fused_predict_and_update_matches_split_calls() {
        let mut fused = predictor();
        let mut split = predictor();
        let mut state = 0x9E37u64;
        for i in 0..6000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pc = 0x400 + (state % 97) * 4;
            let taken = match i % 3 {
                0 => true,
                1 => i % 2 == 0,
                _ => state & 8 != 0,
            };
            let a = fused.predict_and_update(pc, taken);
            let b = split.predict(pc);
            split.update(pc, taken, b);
            assert_eq!(a, b, "iteration {i}");
        }
        assert_eq!(fused.lookups(), split.lookups());
        assert_eq!(fused.mispredicts(), split.mispredicts());
    }

    #[test]
    fn reset_matches_fresh_predictor() {
        let mut bp = predictor();
        for i in 0..500u64 {
            let pc = 0x100 + (i % 37) * 4;
            let p = bp.predict_and_update(pc, i % 3 == 0);
            let _ = p;
            bp.btb_insert(pc);
        }
        bp.ras_push(42);
        bp.reset();
        let mut fresh = predictor();
        for i in 0..500u64 {
            let pc = 0x100 + (i % 37) * 4;
            assert_eq!(
                bp.predict_and_update(pc, i % 2 == 0),
                fresh.predict_and_update(pc, i % 2 == 0)
            );
            assert_eq!(bp.btb_lookup(pc), fresh.btb_lookup(pc));
        }
        assert_eq!(bp.ras_pop(), None);
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut bp = predictor();
        for i in 0..40u64 {
            bp.ras_push(i);
        }
        // Capacity 32: oldest 8 were dropped.
        assert_eq!(bp.ras_pop(), Some(39));
        let mut last = 39;
        while let Some(v) = bp.ras_pop() {
            last = v;
        }
        assert_eq!(last, 8);
    }
}
