//! Processor configuration (paper Table 1).

/// Cache geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.associativity * self.line_bytes)
    }
}

/// Branch-predictor configuration: the paper's combined predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the bimodal table.
    pub bimodal_entries: usize,
    /// Entries in the gshare table.
    pub gshare_entries: usize,
    /// Gshare global-history bits.
    pub gshare_history_bits: u32,
    /// Entries in the chooser table.
    pub chooser_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return address stack depth.
    pub ras_entries: usize,
}

/// Functional-unit pool sizes and operation latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalUnits {
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiplier/dividers.
    pub int_mult: u32,
    /// Floating-point adders.
    pub fp_alu: u32,
    /// Floating-point multiplier/dividers.
    pub fp_mult: u32,
    /// Cache ports for loads/stores.
    pub mem_ports: u32,
}

/// Full processor configuration.
///
/// [`ProcessorConfig::table1`] reproduces the paper's Table 1 exactly:
/// a 3.0 GHz, 4-wide machine with an 80-entry RUU, 40-entry LSQ,
/// 12-cycle branch penalty and a 64 KB/64 KB/2 MB cache hierarchy.
///
/// # Examples
///
/// ```
/// use didt_uarch::ProcessorConfig;
///
/// let cfg = ProcessorConfig::table1();
/// assert_eq!(cfg.ruu_entries, 80);
/// assert_eq!(cfg.l2.size_bytes, 2 * 1024 * 1024);
/// assert_eq!(cfg.clock_hz, 3.0e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorConfig {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Nominal supply voltage in volts.
    pub vdd: f64,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions decoded/dispatched per cycle.
    pub decode_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Register update unit (instruction window) entries.
    pub ruu_entries: usize,
    /// Load/store queue entries.
    pub lsq_entries: usize,
    /// Front-end depth in cycles (fetch → earliest issue), modeling the
    /// deep pipeline's multiple fetch/decode stages.
    pub frontend_depth: u32,
    /// Minimum branch misprediction penalty in cycles.
    pub branch_penalty: u32,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// Functional units.
    pub units: FunctionalUnits,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u32,
    /// Enable the hardware stream prefetcher on the data side.
    pub stream_prefetch: bool,
}

impl ProcessorConfig {
    /// The paper's Table 1 configuration.
    #[must_use]
    pub fn table1() -> Self {
        ProcessorConfig {
            clock_hz: 3.0e9,
            vdd: 1.0,
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            ruu_entries: 80,
            lsq_entries: 40,
            frontend_depth: 6,
            branch_penalty: 12,
            predictor: PredictorConfig {
                bimodal_entries: 4096,
                gshare_entries: 4096,
                gshare_history_bits: 12,
                chooser_entries: 4096,
                btb_entries: 1024,
                btb_ways: 2,
                ras_entries: 32,
            },
            units: FunctionalUnits {
                int_alu: 4,
                int_mult: 1,
                fp_alu: 2,
                fp_mult: 1,
                mem_ports: 2,
            },
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                associativity: 2,
                line_bytes: 64,
                latency: 3,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                associativity: 2,
                line_bytes: 64,
                latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                associativity: 4,
                line_bytes: 64,
                latency: 16,
            },
            memory_latency: 250,
            stream_prefetch: true,
        }
    }
}

impl ProcessorConfig {
    /// A variant of Table 1 scaled to a different superscalar width:
    /// fetch/decode/issue/commit widths, ALU counts, memory ports and
    /// window/LSQ capacity all scale with `width / 4`. Used by the
    /// width-sensitivity ablation (wider machines swing more current and
    /// stress the supply harder).
    ///
    /// # Panics
    ///
    /// Panics unless `width` is 1-16.
    #[must_use]
    pub fn with_width(width: u32) -> Self {
        assert!((1..=16).contains(&width), "width must be 1-16");
        let base = Self::table1();
        let scale = |x: u32| (x * width).div_ceil(4).max(1);
        ProcessorConfig {
            fetch_width: width,
            decode_width: width,
            issue_width: width,
            commit_width: width,
            ruu_entries: (base.ruu_entries * width as usize).div_ceil(4).max(8),
            lsq_entries: (base.lsq_entries * width as usize).div_ceil(4).max(4),
            units: FunctionalUnits {
                int_alu: scale(base.units.int_alu),
                int_mult: scale(base.units.int_mult),
                fp_alu: scale(base.units.fp_alu),
                fp_mult: scale(base.units.fp_mult),
                mem_ports: scale(base.units.mem_ports),
            },
            ..base
        }
    }
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = ProcessorConfig::table1();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.decode_width, 4);
        assert_eq!(c.ruu_entries, 80);
        assert_eq!(c.lsq_entries, 40);
        assert_eq!(c.branch_penalty, 12);
        assert_eq!(c.units.int_alu, 4);
        assert_eq!(c.units.int_mult, 1);
        assert_eq!(c.units.fp_alu, 2);
        assert_eq!(c.units.fp_mult, 1);
        assert_eq!(c.units.mem_ports, 2);
        assert_eq!(c.predictor.bimodal_entries, 4096);
        assert_eq!(c.predictor.gshare_history_bits, 12);
        assert_eq!(c.predictor.btb_entries, 1024);
        assert_eq!(c.predictor.ras_entries, 32);
        assert_eq!(c.l1i.latency, 3);
        assert_eq!(c.l2.latency, 16);
        assert_eq!(c.memory_latency, 250);
        assert_eq!(c.vdd, 1.0);
    }

    #[test]
    fn cache_sets() {
        let c = ProcessorConfig::table1();
        assert_eq!(c.l1d.sets(), 512); // 64 KB / (2 × 64 B)
        assert_eq!(c.l2.sets(), 8192); // 2 MB / (4 × 64 B)
    }

    #[test]
    fn with_width_scales_resources() {
        let narrow = ProcessorConfig::with_width(2);
        assert_eq!(narrow.fetch_width, 2);
        assert_eq!(narrow.ruu_entries, 40);
        assert_eq!(narrow.units.int_alu, 2);
        assert_eq!(narrow.units.int_mult, 1); // never below 1
        let wide = ProcessorConfig::with_width(8);
        assert_eq!(wide.issue_width, 8);
        assert_eq!(wide.ruu_entries, 160);
        assert_eq!(wide.units.mem_ports, 4);
        // Width 4 matches Table 1 resources.
        let four = ProcessorConfig::with_width(4);
        assert_eq!(four.units, ProcessorConfig::table1().units);
        assert_eq!(four.ruu_entries, 80);
    }

    #[test]
    #[should_panic(expected = "width must be 1-16")]
    fn with_width_rejects_zero() {
        let _ = ProcessorConfig::with_width(0);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(ProcessorConfig::default(), ProcessorConfig::table1());
    }
}
