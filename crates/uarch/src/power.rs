//! Wattch-style activity-based power model.
//!
//! Wattch (Brooks et al., ISCA 2000) estimates per-cycle power from
//! per-unit activity counts and per-access energy, with conditional
//! clocking leaving idle units at a fraction of peak. We follow the same
//! structure at a coarser granularity: each microarchitectural event adds
//! its unit's active power to the cycle total, on top of an always-on
//! clock-tree/leakage base. Per the paper's §3.2, per-cycle current is
//! per-cycle power divided by Vdd, so with Vdd = 1.0 V one watt is one
//! ampere.

/// Per-cycle activity counts, filled in by the pipeline each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleActivity {
    /// Instructions fetched (I-cache + front-end).
    pub fetched: u32,
    /// Fetch-equivalents of wrong-path activity during mispredict
    /// recovery (front end keeps toggling).
    pub wrong_path_fetch: u32,
    /// Instructions dispatched into the window.
    pub dispatched: u32,
    /// Integer ALU ops issued.
    pub int_alu: u32,
    /// Integer multiplies issued.
    pub int_mult: u32,
    /// Integer divides issued.
    pub int_div: u32,
    /// FP adds issued.
    pub fp_alu: u32,
    /// FP multiplies issued.
    pub fp_mult: u32,
    /// FP divides issued.
    pub fp_div: u32,
    /// Loads issued (AGU + L1D access).
    pub loads: u32,
    /// Stores issued.
    pub stores: u32,
    /// No-ops issued (dI/dt control injects these).
    pub nops: u32,
    /// L2 accesses initiated.
    pub l2_accesses: u32,
    /// Main-memory accesses initiated.
    pub mem_accesses: u32,
    /// Branch predictor lookups/updates.
    pub branches: u32,
    /// Instructions committed.
    pub committed: u32,
    /// Occupied instruction-window entries this cycle.
    pub window_occupancy: u32,
    /// Occupied LSQ entries this cycle.
    pub lsq_occupancy: u32,
}

/// Unit power weights in watts contributed per event (or per occupied
/// entry) during one cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Always-on clock tree + leakage.
    pub base: f64,
    /// Per fetched instruction (I-cache, TLB, front-end latches).
    pub fetch: f64,
    /// Per dispatched instruction (rename + window write).
    pub dispatch: f64,
    /// Per integer ALU issue.
    pub int_alu: f64,
    /// Per integer multiply issue.
    pub int_mult: f64,
    /// Per integer divide issue.
    pub int_div: f64,
    /// Per FP add issue.
    pub fp_alu: f64,
    /// Per FP multiply issue.
    pub fp_mult: f64,
    /// Per FP divide issue.
    pub fp_div: f64,
    /// Per load issue (AGU + L1D).
    pub load: f64,
    /// Per store issue.
    pub store: f64,
    /// Per injected no-op issue.
    pub nop: f64,
    /// Per L2 access.
    pub l2_access: f64,
    /// Per main-memory access (bus + DRAM interface, on-die share).
    pub mem_access: f64,
    /// Per branch (predictor + BTB).
    pub branch: f64,
    /// Per committed instruction (regfile write + retire).
    pub commit: f64,
    /// Per occupied window entry (CAM wakeup/select).
    pub window_entry: f64,
    /// Per occupied LSQ entry.
    pub lsq_entry: f64,
    /// Relative standard deviation of data-dependent switching activity,
    /// applied to the dynamic (non-base) power each cycle. Real datapaths
    /// draw different power for the same operation depending on operand
    /// bit patterns; Wattch models this with activity factors.
    pub data_jitter: f64,
}

impl PowerModel {
    /// Weights tuned for the paper's 3 GHz Alpha-class core: idle cycles
    /// draw ~13 W, typical activity ~35–50 W, full-throttle bursts near
    /// 80 W — matching the stressor range used for target-impedance
    /// calibration.
    #[must_use]
    pub fn table1() -> Self {
        PowerModel {
            base: 10.0,
            fetch: 2.0,
            dispatch: 1.0,
            int_alu: 4.5,
            int_mult: 7.0,
            int_div: 7.0,
            fp_alu: 6.0,
            fp_mult: 9.0,
            fp_div: 9.0,
            load: 5.5,
            store: 4.5,
            nop: 3.5,
            l2_access: 8.0,
            mem_access: 15.0,
            branch: 1.4,
            commit: 1.5,
            window_entry: 0.04,
            lsq_entry: 0.02,
            data_jitter: 0.15,
        }
    }

    /// Power (watts) drawn by a cycle with no events: the always-on
    /// clock-tree/leakage base plus the occupancy (CAM) power of held
    /// window and LSQ entries. Exactly the occupancy terms of
    /// [`PowerModel::cycle_power`], in the same evaluation order, so
    /// `cycle_power(a) - idle_power(..)` isolates the event-driven share
    /// bit-exactly.
    #[inline]
    #[must_use]
    pub fn idle_power(&self, window_occupancy: u32, lsq_occupancy: u32) -> f64 {
        self.base
            + self.window_entry * f64::from(window_occupancy)
            + self.lsq_entry * f64::from(lsq_occupancy)
    }

    /// Power (watts) drawn during a cycle with the given activity.
    #[inline]
    #[must_use]
    pub fn cycle_power(&self, a: &CycleActivity) -> f64 {
        self.base
            + self.fetch * f64::from(a.fetched)
            + self.fetch * 0.5 * f64::from(a.wrong_path_fetch)
            + self.dispatch * f64::from(a.dispatched)
            + self.int_alu * f64::from(a.int_alu)
            + self.int_mult * f64::from(a.int_mult)
            + self.int_div * f64::from(a.int_div)
            + self.fp_alu * f64::from(a.fp_alu)
            + self.fp_mult * f64::from(a.fp_mult)
            + self.fp_div * f64::from(a.fp_div)
            + self.load * f64::from(a.loads)
            + self.store * f64::from(a.stores)
            + self.nop * f64::from(a.nops)
            + self.l2_access * f64::from(a.l2_accesses)
            + self.mem_access * f64::from(a.mem_accesses)
            + self.branch * f64::from(a.branches)
            + self.commit * f64::from(a.committed)
            + self.window_entry * f64::from(a.window_occupancy)
            + self.lsq_entry * f64::from(a.lsq_occupancy)
    }

    /// Per-cycle current draw in amperes at the given supply voltage
    /// (`I = P / Vdd`, the paper's conversion).
    #[must_use]
    pub fn cycle_current(&self, a: &CycleActivity, vdd: f64) -> f64 {
        self.cycle_power(a) / vdd
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cycle_is_base_power() {
        let m = PowerModel::table1();
        let a = CycleActivity::default();
        assert_eq!(m.cycle_power(&a), m.base);
    }

    #[test]
    fn busy_cycle_near_peak() {
        // 4-wide fetch/dispatch/commit, all FUs firing, full window.
        let m = PowerModel::table1();
        let a = CycleActivity {
            fetched: 4,
            dispatched: 4,
            int_alu: 2,
            fp_mult: 1,
            fp_alu: 1,
            loads: 2,
            l2_accesses: 1,
            branches: 1,
            committed: 4,
            window_occupancy: 80,
            lsq_occupancy: 40,
            ..CycleActivity::default()
        };
        let p = m.cycle_power(&a);
        assert!((60.0..95.0).contains(&p), "peak-ish power {p}");
    }

    #[test]
    fn stalled_cycle_is_low_power() {
        let m = PowerModel::table1();
        let a = CycleActivity {
            window_occupancy: 80,
            lsq_occupancy: 40,
            ..CycleActivity::default()
        };
        let p = m.cycle_power(&a);
        assert!((10.0..20.0).contains(&p), "stall power {p}");
    }

    #[test]
    fn current_is_power_over_vdd() {
        let m = PowerModel::table1();
        let a = CycleActivity {
            fetched: 2,
            ..CycleActivity::default()
        };
        assert_eq!(m.cycle_current(&a, 1.0), m.cycle_power(&a));
        assert!((m.cycle_current(&a, 2.0) - m.cycle_power(&a) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_is_monotone_in_activity() {
        let m = PowerModel::table1();
        let mut a = CycleActivity::default();
        let mut last = m.cycle_power(&a);
        for f in 1..=4 {
            a.fetched = f;
            let p = m.cycle_power(&a);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn idle_power_matches_occupancy_only_cycle() {
        let m = PowerModel::table1();
        let a = CycleActivity {
            window_occupancy: 80,
            lsq_occupancy: 40,
            ..CycleActivity::default()
        };
        // Bitwise equality matters: the pipeline subtracts idle_power
        // from cycle_power to isolate event power.
        assert_eq!(m.idle_power(80, 40), m.cycle_power(&a));
        assert_eq!(m.idle_power(0, 0), m.base);
    }

    #[test]
    fn memory_access_is_expensive() {
        let m = PowerModel::table1();
        assert!(m.mem_access > m.l2_access);
        assert!(m.l2_access > m.load);
    }
}
