//! Micro-operation types flowing through the simulated pipeline.

/// Operation classes, mirroring SimpleScalar's functional-unit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply (3 cycles).
    IntMult,
    /// Integer divide (20 cycles, unpipelined).
    IntDiv,
    /// Floating-point add/sub/compare (2 cycles).
    FpAlu,
    /// Floating-point multiply (4 cycles).
    FpMult,
    /// Floating-point divide (12 cycles, unpipelined).
    FpDiv,
    /// Memory load (latency from the cache hierarchy).
    Load,
    /// Memory store (executes into the LSQ).
    Store,
    /// Conditional branch (resolved by an integer ALU).
    Branch,
    /// No-op, as injected by dI/dt control to raise current draw.
    Nop,
}

impl OpClass {
    /// Execution latency in cycles, excluding memory-hierarchy time.
    #[must_use]
    pub fn base_latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Nop => 1,
            OpClass::IntMult => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAlu => 2,
            OpClass::FpMult => 4,
            OpClass::FpDiv => 12,
            OpClass::Load => 1,  // plus cache latency, added at issue
            OpClass::Store => 1, // address generation only
        }
    }

    /// `true` for loads and stores.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` when the op occupies its functional unit for the full
    /// latency (unpipelined divides).
    #[must_use]
    pub fn is_unpipelined(self) -> bool {
        matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }
}

/// One synthetic instruction, as emitted by a workload generator.
///
/// Dependencies are expressed as *distances*: `dep(k)` means "my source
/// operand is produced by the instruction `k` positions earlier in the
/// dynamic stream" — the standard way synthetic-trace generators encode
/// dataflow without register names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Operation class.
    pub op: OpClass,
    /// Distance to the first source producer (0 = none).
    pub dep1: u32,
    /// Distance to the second source producer (0 = none).
    pub dep2: u32,
    /// Memory address, meaningful for loads/stores.
    pub addr: u64,
    /// Actual branch direction, meaningful for branches.
    pub taken: bool,
    /// Static branch-site identifier (PC proxy), meaningful for branches.
    pub branch_site: u32,
    /// Instruction PC proxy for I-cache simulation.
    pub pc: u64,
}

impl MicroOp {
    /// A no-op micro-op (used for dI/dt no-op injection).
    #[must_use]
    pub fn nop() -> Self {
        MicroOp {
            op: OpClass::Nop,
            dep1: 0,
            dep2: 0,
            addr: 0,
            taken: false,
            branch_site: 0,
            pc: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_ordering() {
        assert!(OpClass::IntDiv.base_latency() > OpClass::IntMult.base_latency());
        assert!(OpClass::FpDiv.base_latency() > OpClass::FpMult.base_latency());
        assert_eq!(OpClass::IntAlu.base_latency(), 1);
    }

    #[test]
    fn memory_classification() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(!OpClass::Branch.is_memory());
    }

    #[test]
    fn unpipelined_divides() {
        assert!(OpClass::IntDiv.is_unpipelined());
        assert!(OpClass::FpDiv.is_unpipelined());
        assert!(!OpClass::IntMult.is_unpipelined());
    }

    #[test]
    fn nop_has_no_dependencies() {
        let n = MicroOp::nop();
        assert_eq!(n.op, OpClass::Nop);
        assert_eq!(n.dep1, 0);
        assert_eq!(n.dep2, 0);
    }
}
