//! Current-trace capture: the bridge between the processor simulator and
//! the wavelet analyses.

use crate::pipeline::{ControlAction, Processor, SimStats};
use crate::workload::{Benchmark, WorkloadGenerator};
use crate::ProcessorConfig;

/// A current trace annotated with per-cycle architectural events, for
/// analyses relating voltage variation to microarchitectural activity
/// (paper §4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    /// The current trace.
    pub trace: CurrentTrace,
    /// Cumulative L2 misses *before* each cycle; the misses inside a
    /// window `[a, b)` are `l2_misses[b] - l2_misses[a]`.
    pub l2_misses: Vec<u64>,
    /// Cumulative branch mispredicts before each cycle.
    pub mispredicts: Vec<u64>,
}

impl EventTrace {
    /// L2 misses that occurred within `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the trace.
    #[must_use]
    pub fn l2_misses_in(&self, start: usize, len: usize) -> u64 {
        self.l2_misses[start + len] - self.l2_misses[start]
    }

    /// Branch mispredicts that occurred within `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the trace.
    #[must_use]
    pub fn mispredicts_in(&self, start: usize, len: usize) -> u64 {
        self.mispredicts[start + len] - self.mispredicts[start]
    }
}

/// Like [`capture_trace`], additionally recording cumulative per-cycle
/// event counters for the paper's §4.3 event-correlation analysis.
#[must_use]
pub fn capture_trace_with_events(
    benchmark: Benchmark,
    config: &ProcessorConfig,
    seed: u64,
    warmup: usize,
    cycles: usize,
) -> EventTrace {
    let gen = WorkloadGenerator::new(benchmark.profile(), seed);
    let mut cpu = Processor::new(*config, gen);
    for _ in 0..warmup {
        cpu.step(ControlAction::Normal);
    }
    let mut samples = Vec::with_capacity(cycles);
    let mut l2 = Vec::with_capacity(cycles + 1);
    let mut misp = Vec::with_capacity(cycles + 1);
    let l2_base = cpu.stats().l2_misses;
    let misp_base = cpu.stats().branch_mispredicts;
    for _ in 0..cycles {
        l2.push(cpu.stats().l2_misses - l2_base);
        misp.push(cpu.stats().branch_mispredicts - misp_base);
        samples.push(cpu.step(ControlAction::Normal).current);
    }
    l2.push(cpu.stats().l2_misses - l2_base);
    misp.push(cpu.stats().branch_mispredicts - misp_base);
    EventTrace {
        trace: CurrentTrace {
            benchmark: benchmark.name(),
            samples,
            stats: cpu.stats(),
        },
        l2_misses: l2,
        mispredicts: misp,
    }
}

/// A captured per-cycle current trace plus run statistics.
///
/// This is "a cycle by cycle current trace as measured or output by an
/// architectural simulator" (paper §2.1) — the input signal of every
/// dI/dt analysis in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentTrace {
    /// Benchmark name the trace came from.
    pub benchmark: &'static str,
    /// Per-cycle current in amperes.
    pub samples: Vec<f64>,
    /// Pipeline statistics over the captured region.
    pub stats: SimStats,
}

impl CurrentTrace {
    /// Number of cycles captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no cycles were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean current over the trace (amperes).
    #[must_use]
    pub fn mean_current(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// Simulate `benchmark` for `warmup + cycles` cycles and capture the
/// current trace of the final `cycles` (warmup fills caches and
/// predictors, mimicking the paper's use of SimPoint regions rather than
/// cold starts).
///
/// Deterministic in `(benchmark, seed)`.
///
/// # Examples
///
/// ```
/// use didt_uarch::{capture_trace, Benchmark, ProcessorConfig};
///
/// let t = capture_trace(Benchmark::Gzip, &ProcessorConfig::table1(), 1, 2_000, 4_096);
/// assert_eq!(t.len(), 4_096);
/// assert!(t.mean_current() > 10.0);
/// ```
#[must_use]
pub fn capture_trace(
    benchmark: Benchmark,
    config: &ProcessorConfig,
    seed: u64,
    warmup: usize,
    cycles: usize,
) -> CurrentTrace {
    let gen = WorkloadGenerator::new(benchmark.profile(), seed);
    let mut cpu = Processor::new(*config, gen);
    for _ in 0..warmup {
        cpu.step(ControlAction::Normal);
    }
    let mut samples = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        samples.push(cpu.step(ControlAction::Normal).current);
    }
    CurrentTrace {
        benchmark: benchmark.name(),
        samples,
        stats: cpu.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_has_requested_length() {
        let t = capture_trace(Benchmark::Eon, &ProcessorConfig::table1(), 1, 500, 1024);
        assert_eq!(t.len(), 1024);
        assert!(!t.is_empty());
        assert_eq!(t.benchmark, "eon");
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture_trace(Benchmark::Twolf, &ProcessorConfig::table1(), 9, 100, 512);
        let b = capture_trace(Benchmark::Twolf, &ProcessorConfig::table1(), 9, 100, 512);
        assert_eq!(a, b);
    }

    #[test]
    fn warmup_changes_the_captured_region() {
        let a = capture_trace(Benchmark::Twolf, &ProcessorConfig::table1(), 9, 0, 512);
        let b = capture_trace(Benchmark::Twolf, &ProcessorConfig::table1(), 9, 5_000, 512);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn event_trace_counters_are_monotone_and_consistent() {
        let t =
            capture_trace_with_events(Benchmark::Mcf, &ProcessorConfig::table1(), 1, 20_000, 4096);
        assert_eq!(t.l2_misses.len(), 4097);
        assert!(t.l2_misses.windows(2).all(|w| w[0] <= w[1]));
        assert!(t.mispredicts.windows(2).all(|w| w[0] <= w[1]));
        // mcf must miss L2 during the window.
        assert!(t.l2_misses_in(0, 4096) > 10);
        // Window accounting adds up.
        let total = t.l2_misses_in(0, 4096);
        let halves = t.l2_misses_in(0, 2048) + t.l2_misses_in(2048, 2048);
        assert_eq!(total, halves);
    }

    #[test]
    fn event_trace_current_matches_plain_capture() {
        let a = capture_trace(Benchmark::Eon, &ProcessorConfig::table1(), 3, 5_000, 1024);
        let b =
            capture_trace_with_events(Benchmark::Eon, &ProcessorConfig::table1(), 3, 5_000, 1024);
        assert_eq!(a.samples, b.trace.samples);
    }

    #[test]
    fn mean_current_in_plausible_band() {
        let t = capture_trace(Benchmark::Gzip, &ProcessorConfig::table1(), 1, 2_000, 8_192);
        let m = t.mean_current();
        assert!((12.0..90.0).contains(&m), "mean current {m}");
    }
}
