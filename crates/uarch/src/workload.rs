//! Synthetic SPEC CPU2000 workloads.
//!
//! The paper evaluates on all 26 SPEC2000 benchmarks compiled for Alpha
//! and simulated at SimPoints. Licensed SPEC binaries are not available
//! here, so each benchmark is modeled as a **statistical instruction-
//! stream profile**: operation mix, dependency-distance distribution,
//! memory working sets (which the real cache hierarchy then turns into
//! L1/L2 miss rates), branch-site behaviour, and coarse program phases.
//! The profiles are tuned so the *classes* the paper's evaluation depends
//! on are reproduced:
//!
//! * low-L2-miss, smooth benchmarks (gzip, mesa, crafty, eon, …) whose
//!   per-cycle current windows are frequently Gaussian (Figures 10, 12);
//! * high-L2-miss, bursty benchmarks (swim, lucas, mcf, art) with long
//!   memory stalls and activity spikes (Figure 11);
//! * mid-frequency oscillators whose hot working set thrashes L1 into L2
//!   (mgrid, gcc, galgel, apsi) — the dI/dt troublemakers of Figure 9.
//!
//! Every generator is seeded; a given `(benchmark, seed)` pair always
//! produces the identical instruction stream.

use crate::op::{MicroOp, OpClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which SPEC suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint 2000.
    Int,
    /// SPECfp 2000.
    Fp,
}

/// Fractions of each operation class in the dynamic instruction mix.
/// Fields need not be normalized; the generator normalizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
    /// Integer ALU ops.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mult: f64,
    /// Integer divides.
    pub int_div: f64,
    /// FP adds.
    pub fp_alu: f64,
    /// FP multiplies.
    pub fp_mult: f64,
    /// FP divides.
    pub fp_div: f64,
}

impl OpMix {
    fn cumulative(&self) -> [(OpClass, f64); 9] {
        let raw = [
            (OpClass::Load, self.load),
            (OpClass::Store, self.store),
            (OpClass::Branch, self.branch),
            (OpClass::IntAlu, self.int_alu),
            (OpClass::IntMult, self.int_mult),
            (OpClass::IntDiv, self.int_div),
            (OpClass::FpAlu, self.fp_alu),
            (OpClass::FpMult, self.fp_mult),
            (OpClass::FpDiv, self.fp_div),
        ];
        let total: f64 = raw.iter().map(|(_, f)| f).sum();
        let mut acc = 0.0;
        raw.map(|(op, f)| {
            acc += f / total;
            (op, acc)
        })
    }
}

/// A statistical workload profile: everything needed to generate an
/// instruction stream resembling one SPEC benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (SPEC 2000 naming).
    pub name: &'static str,
    /// Integer or floating-point suite.
    pub suite: Suite,
    /// Dynamic operation mix.
    pub mix: OpMix,
    /// Probability an instruction depends on a recent producer.
    pub dep_density: f64,
    /// Mean dependency distance in instructions (geometric).
    pub dep_mean_distance: f64,
    /// Hot data working set, in 64-byte lines.
    pub hot_ws_lines: u64,
    /// Cold data working set, in 64-byte lines.
    pub cold_ws_lines: u64,
    /// Fraction of memory accesses to the cold set.
    pub cold_frac: f64,
    /// Fraction of memory accesses that stream sequentially.
    pub stream_frac: f64,
    /// Instruction footprint, in 64-byte lines.
    pub code_lines: u64,
    /// Number of static branch sites.
    pub branch_sites: u32,
    /// Fraction of branch sites that behave as regular loop branches.
    pub loop_site_frac: f64,
    /// Fraction of branch sites that are data-dependent and hard to
    /// predict (taken bias near 0.5); the rest of the non-loop sites are
    /// strongly biased and easily predicted.
    pub hard_site_frac: f64,
    /// Loop trip count for loop-patterned sites (taken `n-1` of `n`).
    pub loop_period: u32,
    /// Program phase length in instructions (0 = single phase).
    pub phase_period: u64,
    /// Multiplier applied to `cold_frac` in the alternate phase.
    pub phase_mem_boost: f64,
}

/// The 26 SPEC CPU2000 benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Gzip,
    Vpr,
    Gcc,
    Mcf,
    Crafty,
    Parser,
    Eon,
    Perlbmk,
    Gap,
    Vortex,
    Bzip2,
    Twolf,
    Wupwise,
    Swim,
    Mgrid,
    Applu,
    Mesa,
    Galgel,
    Art,
    Equake,
    Facerec,
    Ammp,
    Lucas,
    Fma3d,
    Sixtrack,
    Apsi,
}

impl Benchmark {
    /// All 26 benchmarks in the paper's figure order (gzip … apsi).
    #[must_use]
    pub fn all() -> [Benchmark; 26] {
        use Benchmark::*;
        [
            Gzip, Wupwise, Swim, Mgrid, Applu, Vpr, Gcc, Mesa, Galgel, Art, Mcf, Equake, Crafty,
            Facerec, Ammp, Lucas, Fma3d, Parser, Sixtrack, Eon, Perlbmk, Gap, Vortex, Bzip2, Twolf,
            Apsi,
        ]
    }

    /// Benchmark name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Suite membership.
    #[must_use]
    pub fn suite(self) -> Suite {
        self.profile().suite
    }

    /// The calibrated statistical profile for this benchmark.
    #[must_use]
    pub fn profile(self) -> WorkloadProfile {
        use Benchmark::*;
        // Mix shorthands.
        let int_mix = |ld, st, br| OpMix {
            load: ld,
            store: st,
            branch: br,
            int_alu: 1.0 - ld - st - br,
            int_mult: 0.01,
            int_div: 0.002,
            fp_alu: 0.0,
            fp_mult: 0.0,
            fp_div: 0.0,
        };
        let fp_mix = |ld: f64, st: f64, br: f64, fdiv: f64| OpMix {
            load: ld,
            store: st,
            branch: br,
            int_alu: (1.0 - ld - st - br) * 0.35,
            int_mult: 0.005,
            int_div: 0.0,
            fp_alu: (1.0 - ld - st - br) * 0.38,
            fp_mult: (1.0 - ld - st - br) * 0.27,
            fp_div: fdiv,
        };
        // A baseline profile; per-benchmark entries override.
        let base = WorkloadProfile {
            name: "",
            suite: Suite::Int,
            mix: int_mix(0.25, 0.10, 0.15),
            dep_density: 0.75,
            dep_mean_distance: 4.0,
            hot_ws_lines: 512,     // 32 KB: fits L1
            cold_ws_lines: 65_536, // 4 MB
            cold_frac: 0.02,
            stream_frac: 0.20,
            code_lines: 256,
            branch_sites: 512,
            loop_site_frac: 0.7,
            hard_site_frac: 0.06,
            loop_period: 16,
            phase_period: 0,
            phase_mem_boost: 1.0,
        };
        match self {
            // ---- SPEC Int ----
            Gzip => WorkloadProfile {
                name: "gzip",
                hard_site_frac: 0.07,
                mix: int_mix(0.22, 0.10, 0.14),
                hot_ws_lines: 700,
                stream_frac: 0.35,
                cold_frac: 0.003,
                loop_site_frac: 0.8,
                ..base
            },
            Vpr => WorkloadProfile {
                name: "vpr",
                hard_site_frac: 0.15,
                mix: int_mix(0.28, 0.09, 0.13),
                hot_ws_lines: 900,
                cold_frac: 0.008,
                dep_density: 0.8,
                dep_mean_distance: 3.0,
                ..base
            },
            Gcc => WorkloadProfile {
                name: "gcc",
                hard_site_frac: 0.18,
                // L1-thrashing hot set that lives in L2: mid-frequency
                // stall/run oscillation, a dI/dt stressor (Figure 9).
                mix: int_mix(0.30, 0.12, 0.17),
                hot_ws_lines: 3000, // ~190 KB: misses L1, hits L2
                cold_frac: 0.006,
                code_lines: 1536, // large code footprint
                branch_sites: 2048,
                loop_site_frac: 0.55,
                phase_period: 400_000,
                phase_mem_boost: 1.6,
                ..base
            },
            Mcf => WorkloadProfile {
                name: "mcf",
                hard_site_frac: 0.16,
                // Pointer chasing over a huge structure: memory-bound.
                mix: int_mix(0.34, 0.09, 0.16),
                hot_ws_lines: 256,
                cold_ws_lines: 1_500_000, // ~96 MB
                cold_frac: 0.38,
                dep_density: 0.9,
                dep_mean_distance: 2.0, // serial chains
                loop_site_frac: 0.45,
                ..base
            },
            Crafty => WorkloadProfile {
                name: "crafty",
                hard_site_frac: 0.08,
                mix: int_mix(0.24, 0.08, 0.12),
                hot_ws_lines: 600,
                cold_frac: 0.003,
                dep_density: 0.65,
                dep_mean_distance: 5.0, // good ILP
                loop_site_frac: 0.75,
                ..base
            },
            Parser => WorkloadProfile {
                name: "parser",
                hard_site_frac: 0.12,
                mix: int_mix(0.27, 0.10, 0.16),
                hot_ws_lines: 1100,
                cold_frac: 0.015,
                loop_site_frac: 0.5,
                ..base
            },
            Eon => WorkloadProfile {
                name: "eon",
                hard_site_frac: 0.03,
                mix: int_mix(0.25, 0.12, 0.11),
                hot_ws_lines: 500,
                cold_frac: 0.002,
                dep_density: 0.6,
                dep_mean_distance: 5.0,
                loop_site_frac: 0.8,
                ..base
            },
            Perlbmk => WorkloadProfile {
                name: "perlbmk",
                hard_site_frac: 0.10,
                mix: int_mix(0.26, 0.12, 0.15),
                hot_ws_lines: 800,
                cold_frac: 0.005,
                code_lines: 1024,
                ..base
            },
            Gap => WorkloadProfile {
                name: "gap",
                hard_site_frac: 0.06,
                mix: int_mix(0.26, 0.10, 0.13),
                hot_ws_lines: 900,
                cold_frac: 0.006,
                stream_frac: 0.3,
                ..base
            },
            Vortex => WorkloadProfile {
                name: "vortex",
                hard_site_frac: 0.08,
                mix: int_mix(0.28, 0.13, 0.14),
                hot_ws_lines: 1000,
                cold_frac: 0.012,
                code_lines: 1536,
                ..base
            },
            Bzip2 => WorkloadProfile {
                name: "bzip2",
                hard_site_frac: 0.08,
                mix: int_mix(0.24, 0.10, 0.13),
                hot_ws_lines: 1200,
                stream_frac: 0.4,
                cold_frac: 0.008,
                ..base
            },
            Twolf => WorkloadProfile {
                name: "twolf",
                hard_site_frac: 0.15,
                mix: int_mix(0.27, 0.09, 0.14),
                hot_ws_lines: 1000,
                cold_frac: 0.012,
                loop_site_frac: 0.55,
                ..base
            },
            // ---- SPEC FP ----
            Wupwise => WorkloadProfile {
                name: "wupwise",
                hard_site_frac: 0.02,
                suite: Suite::Fp,
                mix: fp_mix(0.24, 0.10, 0.05, 0.002),
                hot_ws_lines: 900,
                stream_frac: 0.45,
                cold_frac: 0.02,
                dep_density: 0.6,
                dep_mean_distance: 6.0,
                loop_period: 32,
                ..base
            },
            Swim => WorkloadProfile {
                name: "swim",
                hard_site_frac: 0.02,
                suite: Suite::Fp,
                // Streaming through arrays far larger than L2.
                mix: fp_mix(0.30, 0.14, 0.03, 0.001),
                hot_ws_lines: 512,
                cold_ws_lines: 3_000_000,
                cold_frac: 0.30,
                stream_frac: 0.5,
                dep_density: 0.5,
                dep_mean_distance: 8.0,
                loop_period: 64,
                loop_site_frac: 0.9,
                ..base
            },
            Mgrid => WorkloadProfile {
                name: "mgrid",
                hard_site_frac: 0.02,
                suite: Suite::Fp,
                // Multigrid stencil: hot set thrashes L1 into L2 —
                // mid-frequency oscillator, a Figure 9 troublemaker.
                mix: fp_mix(0.33, 0.09, 0.03, 0.001),
                hot_ws_lines: 3500, // ~224 KB
                cold_frac: 0.008,
                dep_density: 0.85,
                dep_mean_distance: 2.5,
                loop_period: 32,
                loop_site_frac: 0.9,
                phase_period: 250_000,
                phase_mem_boost: 1.8,
                ..base
            },
            Applu => WorkloadProfile {
                name: "applu",
                hard_site_frac: 0.04,
                suite: Suite::Fp,
                mix: fp_mix(0.28, 0.12, 0.03, 0.004),
                hot_ws_lines: 2200,
                cold_ws_lines: 500_000,
                cold_frac: 0.06,
                dep_density: 0.7,
                loop_period: 32,
                ..base
            },
            Mesa => WorkloadProfile {
                name: "mesa",
                hard_site_frac: 0.04,
                suite: Suite::Fp,
                mix: fp_mix(0.24, 0.12, 0.08, 0.002),
                hot_ws_lines: 600,
                cold_frac: 0.003,
                dep_density: 0.6,
                dep_mean_distance: 5.0,
                ..base
            },
            Galgel => WorkloadProfile {
                name: "galgel",
                hard_site_frac: 0.02,
                suite: Suite::Fp,
                // Dense linear algebra with an L2-resident blocked set.
                mix: fp_mix(0.30, 0.08, 0.04, 0.001),
                hot_ws_lines: 2800,
                cold_frac: 0.006,
                dep_density: 0.85,
                dep_mean_distance: 2.5,
                loop_period: 24,
                loop_site_frac: 0.9,
                phase_period: 300_000,
                phase_mem_boost: 1.5,
                ..base
            },
            Art => WorkloadProfile {
                name: "art",
                hard_site_frac: 0.03,
                suite: Suite::Fp,
                // Neural-net scan of arrays exceeding L2 every pass.
                mix: fp_mix(0.32, 0.06, 0.05, 0.001),
                hot_ws_lines: 400,
                cold_ws_lines: 2_000_000,
                cold_frac: 0.34,
                stream_frac: 0.35,
                dep_density: 0.75,
                dep_mean_distance: 3.0,
                ..base
            },
            Equake => WorkloadProfile {
                name: "equake",
                hard_site_frac: 0.04,
                suite: Suite::Fp,
                mix: fp_mix(0.30, 0.08, 0.05, 0.003),
                hot_ws_lines: 1200,
                cold_ws_lines: 800_000,
                cold_frac: 0.05,
                dep_density: 0.7,
                ..base
            },
            Facerec => WorkloadProfile {
                name: "facerec",
                hard_site_frac: 0.03,
                suite: Suite::Fp,
                mix: fp_mix(0.27, 0.09, 0.05, 0.002),
                hot_ws_lines: 1500,
                cold_frac: 0.04,
                stream_frac: 0.35,
                ..base
            },
            Ammp => WorkloadProfile {
                name: "ammp",
                hard_site_frac: 0.04,
                suite: Suite::Fp,
                mix: fp_mix(0.29, 0.09, 0.05, 0.006),
                hot_ws_lines: 1800,
                cold_ws_lines: 600_000,
                cold_frac: 0.07,
                dep_density: 0.8,
                dep_mean_distance: 2.5,
                ..base
            },
            Lucas => WorkloadProfile {
                name: "lucas",
                hard_site_frac: 0.02,
                suite: Suite::Fp,
                // FFT-like passes over arrays far beyond L2.
                mix: fp_mix(0.28, 0.12, 0.02, 0.001),
                hot_ws_lines: 512,
                cold_ws_lines: 2_500_000,
                cold_frac: 0.28,
                stream_frac: 0.45,
                dep_density: 0.55,
                dep_mean_distance: 7.0,
                loop_period: 64,
                loop_site_frac: 0.95,
                ..base
            },
            Fma3d => WorkloadProfile {
                name: "fma3d",
                hard_site_frac: 0.04,
                suite: Suite::Fp,
                mix: fp_mix(0.28, 0.11, 0.06, 0.003),
                hot_ws_lines: 1600,
                cold_ws_lines: 700_000,
                cold_frac: 0.05,
                ..base
            },
            Sixtrack => WorkloadProfile {
                name: "sixtrack",
                hard_site_frac: 0.03,
                suite: Suite::Fp,
                mix: fp_mix(0.22, 0.08, 0.05, 0.004),
                hot_ws_lines: 800,
                cold_frac: 0.004,
                dep_density: 0.65,
                dep_mean_distance: 5.0,
                ..base
            },
            Apsi => WorkloadProfile {
                name: "apsi",
                hard_site_frac: 0.03,
                suite: Suite::Fp,
                // Blocked mesh sweeps with an L2-resident working set.
                mix: fp_mix(0.29, 0.11, 0.04, 0.002),
                hot_ws_lines: 3200,
                cold_ws_lines: 400_000,
                cold_frac: 0.008,
                dep_density: 0.85,
                dep_mean_distance: 2.5,
                loop_period: 28,
                loop_site_frac: 0.85,
                phase_period: 350_000,
                phase_mem_boost: 1.6,
                ..base
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    name: String,
}

impl std::fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown SPEC2000 benchmark name: {}", self.name)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl std::str::FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::all()
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError {
                name: s.to_string(),
            })
    }
}

/// Per-site branch behaviour.
#[derive(Debug, Clone, Copy)]
struct BranchSite {
    /// `Some(period)` for a loop site; `None` for a biased-random site.
    loop_period: Option<u32>,
    counter: u32,
    taken_bias: f64,
}

/// Deterministic synthetic instruction-stream generator for one profile.
///
/// Implements [`Iterator`] over [`MicroOp`]s; the stream is infinite.
///
/// # Examples
///
/// ```
/// use didt_uarch::{Benchmark, WorkloadGenerator};
///
/// let mut g = WorkloadGenerator::new(Benchmark::Gzip.profile(), 42);
/// let ops: Vec<_> = (&mut g).take(1000).collect();
/// assert_eq!(ops.len(), 1000);
/// // Deterministic: same seed, same stream.
/// let mut g2 = WorkloadGenerator::new(Benchmark::Gzip.profile(), 42);
/// assert_eq!(g2.next().unwrap().op, ops[0].op);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: WorkloadProfile,
    rng: SmallRng,
    /// Op-mix cumulative thresholds and their classes, split into
    /// parallel arrays for the scan in `pick_op`.
    op_cum: [f64; 9],
    op_classes: [OpClass; 9],
    /// First cumulative index worth testing for a uniform draw in bucket
    /// `b/256` — skips the prefix of the scan that cannot match.
    op_guide: [u8; 256],
    sites: Vec<BranchSite>,
    /// Static branch PCs and jump targets per site (pure functions of
    /// the site index and code footprint, precomputed).
    site_pc: Vec<u64>,
    site_target: Vec<u64>,
    /// Hoisted `(1 - 1/dep_mean_distance).ln()` for geometric sampling.
    ln_one_minus_p: f64,
    /// Hoisted address-picker thresholds: `stream_frac`, and
    /// `stream_frac + cold_frac` for the normal and alternate phases.
    thr_stream: f64,
    thr_cold_normal: f64,
    thr_cold_alt: f64,
    /// Hoisted `.max(1)` working-set line counts.
    hot_lines: u64,
    cold_lines: u64,
    /// Hoisted end of the code footprint.
    code_end: u64,
    /// Instructions until the next phase toggle (`u64::MAX`-loaded when
    /// the profile is single-phase).
    phase_countdown: u64,
    phase_reload: u64,
    stream_ptr: u64,
    pc: u64,
    emitted: u64,
    in_alt_phase: bool,
}

/// Base virtual address of the hot data region.
const HOT_BASE: u64 = 0x1000_0000;
/// Base virtual address of the cold data region.
const COLD_BASE: u64 = 0x8000_0000;
/// Base virtual address of the streaming region.
const STREAM_BASE: u64 = 0x4000_0000;
/// Base virtual address of code.
const CODE_BASE: u64 = 0x0040_0000;

impl WorkloadGenerator {
    /// Create a generator for `profile`, seeded deterministically.
    #[must_use]
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_CAFE);
        let sites = (0..profile.branch_sites.max(1))
            .map(|_| {
                let x: f64 = rng.random();
                if x < profile.loop_site_frac {
                    BranchSite {
                        loop_period: Some(profile.loop_period.max(2)),
                        counter: 0,
                        taken_bias: 0.0,
                    }
                } else if x < profile.loop_site_frac + profile.hard_site_frac {
                    // Data-dependent branch: outcome near-random.
                    BranchSite {
                        loop_period: None,
                        counter: 0,
                        taken_bias: 0.3 + 0.4 * rng.random::<f64>(),
                    }
                } else {
                    // Strongly biased branch (error checks, dominant
                    // paths): taken or not-taken with ~90-98 % bias.
                    let b = 0.88 + 0.1 * rng.random::<f64>();
                    BranchSite {
                        loop_period: None,
                        counter: 0,
                        taken_bias: if rng.random::<bool>() { b } else { 1.0 - b },
                    }
                }
            })
            .collect();
        let cumulative = profile.mix.cumulative();
        let mut op_cum = [0.0f64; 9];
        let mut op_classes = [OpClass::IntAlu; 9];
        for (i, (op, cum)) in cumulative.into_iter().enumerate() {
            op_cum[i] = cum;
            op_classes[i] = op;
        }
        // For a draw x in bucket [b/256, (b+1)/256), every entry with
        // cum <= b/256 can never satisfy x < cum — start the scan past
        // them. Result is identical to scanning from index 0.
        let mut op_guide = [9u8; 256];
        for (b, slot) in op_guide.iter_mut().enumerate() {
            let lo = b as f64 / 256.0;
            if let Some(i) = op_cum.iter().position(|&c| c > lo) {
                *slot = i as u8;
            }
        }
        let span = profile.code_lines * 64;
        let site_count = profile.branch_sites.max(1) as usize;
        let site_pc = (0..site_count as u64)
            .map(|s| CODE_BASE + ((s.wrapping_mul(2_654_435_761) % span) & !3))
            .collect();
        let site_target = (0..site_count as u64)
            .map(|s| CODE_BASE + ((s.wrapping_mul(0x9E37_79B9) % span) & !3))
            .collect();
        let p = 1.0 / profile.dep_mean_distance.max(1.0);
        let cold_alt = (profile.cold_frac * profile.phase_mem_boost).min(0.9);
        let phase_reload = if profile.phase_period > 0 {
            profile.phase_period
        } else {
            u64::MAX
        };
        WorkloadGenerator {
            rng,
            op_cum,
            op_classes,
            op_guide,
            sites,
            site_pc,
            site_target,
            ln_one_minus_p: (1.0 - p).ln(),
            thr_stream: profile.stream_frac,
            thr_cold_normal: profile.stream_frac + profile.cold_frac,
            thr_cold_alt: profile.stream_frac + cold_alt,
            hot_lines: profile.hot_ws_lines.max(1),
            cold_lines: profile.cold_ws_lines.max(1),
            code_end: CODE_BASE + span,
            phase_countdown: phase_reload,
            phase_reload,
            profile,
            stream_ptr: STREAM_BASE,
            pc: CODE_BASE,
            emitted: 0,
            in_alt_phase: false,
        }
    }

    /// The profile driving this generator.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Instructions emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn pick_op(&mut self) -> OpClass {
        let x: f64 = self.rng.random();
        // x < 1.0, so the bucket index is already in range; the `min` is
        // pure belt-and-braces against a pathological uniform source.
        let bucket = ((x * 256.0) as usize).min(255);
        for i in usize::from(self.op_guide[bucket])..9 {
            if x < self.op_cum[i] {
                return self.op_classes[i];
            }
        }
        OpClass::IntAlu
    }

    fn pick_dep(&mut self) -> u32 {
        if self.rng.random::<f64>() >= self.profile.dep_density {
            return 0;
        }
        // Geometric distance with the profile's mean, at least 1.
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        let d = (u.ln() / self.ln_one_minus_p).ceil();
        (d as u32).clamp(1, 64)
    }

    fn pick_addr(&mut self) -> u64 {
        let thr_cold = if self.in_alt_phase {
            self.thr_cold_alt
        } else {
            self.thr_cold_normal
        };
        let x: f64 = self.rng.random();
        if x < self.thr_stream {
            // Sequential 8-byte stride through the stream region.
            self.stream_ptr += 8;
            if self.stream_ptr > STREAM_BASE + (1 << 28) {
                self.stream_ptr = STREAM_BASE;
            }
            self.stream_ptr
        } else if x < thr_cold {
            let line = self.rng.random_range(0..self.cold_lines);
            COLD_BASE + line * 64 + self.rng.random_range(0..8u64) * 8
        } else {
            let line = self.rng.random_range(0..self.hot_lines);
            HOT_BASE + line * 64 + self.rng.random_range(0..8u64) * 8
        }
    }

    fn branch_outcome(&mut self, site_idx: usize) -> bool {
        let site = &mut self.sites[site_idx];
        match site.loop_period {
            Some(period) => {
                site.counter += 1;
                if site.counter >= period {
                    site.counter = 0;
                    false // loop exit
                } else {
                    true
                }
            }
            None => self.rng.random::<f64>() < site.taken_bias,
        }
    }
}

impl Iterator for WorkloadGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        self.emitted += 1;
        // Countdown form of `emitted % phase_period == 0` (single-phase
        // profiles load u64::MAX and never fire).
        self.phase_countdown -= 1;
        if self.phase_countdown == 0 {
            self.in_alt_phase = !self.in_alt_phase;
            self.phase_countdown = self.phase_reload;
        }
        let op = self.pick_op();
        let pc = self.pc;
        self.pc += 4;
        // Wrap the PC within the code footprint.
        if self.pc >= self.code_end {
            self.pc = CODE_BASE;
        }
        let mut uop = MicroOp {
            op,
            dep1: self.pick_dep(),
            dep2: 0,
            addr: 0,
            taken: false,
            branch_site: 0,
            pc,
        };
        match op {
            OpClass::Load | OpClass::Store => {
                uop.addr = self.pick_addr();
                // Stores often also carry a data dependence.
                if op == OpClass::Store {
                    uop.dep2 = self.pick_dep();
                }
            }
            OpClass::Branch => {
                // Branches test a freshly computed condition: depend on
                // the immediately preceding instruction (the compare), so
                // resolution latency tracks that producer — fast for ALU
                // producers, slow when the condition chains to a miss.
                uop.dep1 = if uop.dep1 > 0 { 1 } else { 0 };
                let site = self.rng.random_range(0..self.sites.len());
                uop.branch_site = site as u32;
                // A static branch lives at a fixed PC: derive it from the
                // site so the (PC-indexed) branch predictor can learn the
                // site's behaviour, exactly as for real code. (The hash
                // is precomputed per site at construction.)
                uop.pc = self.site_pc[site];
                uop.taken = self.branch_outcome(site);
                if uop.taken {
                    // Jump to the site's target within the code footprint.
                    self.pc = self.site_target[site];
                }
            }
            OpClass::FpAlu | OpClass::FpMult | OpClass::FpDiv => {
                uop.dep2 = self.pick_dep();
            }
            _ => {}
        }
        Some(uop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn all_26_benchmarks_present() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 26);
        let ints = all.iter().filter(|b| b.suite() == Suite::Int).count();
        let fps = all.iter().filter(|b| b.suite() == Suite::Fp).count();
        assert_eq!(ints, 12);
        assert_eq!(fps, 14);
        // Names unique.
        let names: std::collections::HashSet<_> = all.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn benchmark_parses_and_displays() {
        use std::str::FromStr;
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_str(&b.to_string()), Ok(b));
        }
        assert!(Benchmark::from_str("nonsense").is_err());
        assert!(Benchmark::from_str("nonsense")
            .unwrap_err()
            .to_string()
            .contains("nonsense"));
    }

    #[test]
    fn paper_figure_order_starts_with_gzip() {
        let names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(&names[..5], &["gzip", "wupwise", "swim", "mgrid", "applu"]);
        assert_eq!(names[25], "apsi");
    }

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<_> = WorkloadGenerator::new(Benchmark::Gcc.profile(), 7)
            .take(500)
            .collect();
        let b: Vec<_> = WorkloadGenerator::new(Benchmark::Gcc.profile(), 7)
            .take(500)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = WorkloadGenerator::new(Benchmark::Gcc.profile(), 1)
            .take(200)
            .collect();
        let b: Vec<_> = WorkloadGenerator::new(Benchmark::Gcc.profile(), 2)
            .take(200)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn op_mix_close_to_profile() {
        let profile = Benchmark::Gzip.profile();
        let n = 50_000;
        let mut counts: HashMap<OpClass, usize> = HashMap::new();
        for uop in WorkloadGenerator::new(profile, 3).take(n) {
            *counts.entry(uop.op).or_default() += 1;
        }
        let load_frac = counts[&OpClass::Load] as f64 / n as f64;
        assert!((load_frac - 0.22).abs() < 0.02, "load frac {load_frac}");
        let br_frac = counts[&OpClass::Branch] as f64 / n as f64;
        assert!((br_frac - 0.14).abs() < 0.02, "branch frac {br_frac}");
    }

    #[test]
    fn fp_benchmarks_emit_fp_ops() {
        let counts = WorkloadGenerator::new(Benchmark::Swim.profile(), 1)
            .take(10_000)
            .filter(|u| matches!(u.op, OpClass::FpAlu | OpClass::FpMult | OpClass::FpDiv))
            .count();
        assert!(counts > 2000, "fp ops {counts}");
    }

    #[test]
    fn int_benchmarks_emit_no_fp() {
        let counts = WorkloadGenerator::new(Benchmark::Mcf.profile(), 1)
            .take(10_000)
            .filter(|u| matches!(u.op, OpClass::FpAlu | OpClass::FpMult | OpClass::FpDiv))
            .count();
        assert_eq!(counts, 0);
    }

    #[test]
    fn memory_benchmark_touches_cold_region() {
        let cold = WorkloadGenerator::new(Benchmark::Mcf.profile(), 1)
            .take(20_000)
            .filter(|u| u.op.is_memory() && u.addr >= COLD_BASE)
            .count();
        let total_mem = WorkloadGenerator::new(Benchmark::Mcf.profile(), 1)
            .take(20_000)
            .filter(|u| u.op.is_memory())
            .count();
        let frac = cold as f64 / total_mem as f64;
        assert!((frac - 0.38).abs() < 0.05, "cold frac {frac}");
    }

    #[test]
    fn compute_benchmark_rarely_touches_cold() {
        let cold = WorkloadGenerator::new(Benchmark::Eon.profile(), 1)
            .take(20_000)
            .filter(|u| u.op.is_memory() && u.addr >= COLD_BASE)
            .count();
        assert!(cold < 100, "cold accesses {cold}");
    }

    #[test]
    fn dependency_distances_bounded_and_present() {
        let g = WorkloadGenerator::new(Benchmark::Vpr.profile(), 1);
        let mut with_dep = 0;
        let mut n = 0;
        for u in g.take(10_000) {
            n += 1;
            if u.dep1 > 0 {
                with_dep += 1;
                assert!(u.dep1 <= 64);
            }
        }
        let frac = with_dep as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.05, "dep density {frac}");
    }

    #[test]
    fn loop_branches_mostly_taken() {
        // Swim has 90 % loop sites with period 64 → overwhelmingly taken.
        let (mut taken, mut total) = (0, 0);
        for u in WorkloadGenerator::new(Benchmark::Swim.profile(), 1).take(50_000) {
            if u.op == OpClass::Branch {
                total += 1;
                if u.taken {
                    taken += 1;
                }
            }
        }
        let frac = taken as f64 / total as f64;
        assert!(frac > 0.85, "taken frac {frac}");
    }

    #[test]
    fn phase_switching_changes_cold_traffic() {
        // mgrid boosts cold traffic in its alternate phase.
        let profile = Benchmark::Mgrid.profile();
        assert!(profile.phase_period > 0);
        let g = WorkloadGenerator::new(profile, 1);
        let ops: Vec<_> = g.take(2 * profile.phase_period as usize).collect();
        let half = profile.phase_period as usize;
        let cold_a = ops[..half]
            .iter()
            .filter(|u| u.op.is_memory() && u.addr >= COLD_BASE)
            .count();
        let cold_b = ops[half..]
            .iter()
            .filter(|u| u.op.is_memory() && u.addr >= COLD_BASE)
            .count();
        // mgrid's boost is 1.8x; allow sampling noise.
        assert!(
            cold_b as f64 > cold_a as f64 * 1.3,
            "phase A {cold_a}, phase B {cold_b}"
        );
    }

    #[test]
    fn pcs_stay_within_code_footprint() {
        let profile = Benchmark::Gcc.profile();
        for u in WorkloadGenerator::new(profile, 1).take(20_000) {
            assert!(u.pc >= CODE_BASE);
            assert!(u.pc < CODE_BASE + profile.code_lines * 64 + 64);
        }
    }
}
