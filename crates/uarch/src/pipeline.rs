//! The cycle-level out-of-order core.
//!
//! A SimpleScalar-RUU-style machine: a unified instruction window (RUU)
//! with a load/store queue, fetched from a synthetic instruction stream,
//! issued out of order to the Table 1 functional-unit pool, committed in
//! order. Every cycle produces a [`CycleOutput`] with the Wattch-style
//! power/current draw — the signal all dI/dt analysis consumes.
//!
//! The pipeline accepts an external [`ControlAction`] each cycle, which
//! is how microarchitectural dI/dt control couples in: `StallIssue`
//! suppresses instruction issue (cutting current draw), `InjectNops`
//! replaces fetched instructions with no-ops (raising current draw when
//! the machine is otherwise idle).
//!
//! # Fast-path layout
//!
//! The per-cycle state lives in flat structure-of-arrays form (`RobRing`
//! internally): the instruction window is a power-of-two ring of parallel
//! arrays rather than a `VecDeque` of structs, and the issue/writeback
//! loops are event-driven instead of window scans:
//!
//! * **Writeback** drains a timing wheel keyed by completion cycle, so
//!   only instructions finishing *this* cycle are touched.
//! * **Issue** walks a ready bitmask in ring (oldest-first) order; an
//!   entry enters the mask when its front-end delay elapses and its last
//!   outstanding dependency completes (a wakeup list per completion-ring
//!   slot), exactly the predicate the original full-window scan
//!   evaluated per cycle.
//!
//! Both paths make the same decisions in the same order as the original
//! O(window)-per-cycle formulation — the golden fingerprint suite in
//! `integration-tests` pins every benchmark's trace to the pre-rewrite
//! simulator.

use crate::branch::BranchPredictor;
use crate::cache::{AccessLevel, Cache, Hierarchy};
use crate::config::ProcessorConfig;
use crate::op::{MicroOp, OpClass};
use crate::power::{CycleActivity, PowerModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-cycle control input from a dI/dt controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlAction {
    /// Run normally.
    #[default]
    Normal,
    /// Suppress instruction issue this cycle (voltage-low response).
    StallIssue,
    /// Fill idle issue slots with injected no-ops (voltage-high
    /// response: keeps current draw up without displacing program work).
    InjectNops,
}

/// What one simulated cycle produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleOutput {
    /// Current drawn this cycle, in amperes.
    pub current: f64,
    /// Power drawn this cycle, in watts.
    pub power: f64,
    /// Program (non-nop) instructions committed this cycle.
    pub committed: u32,
}

/// What a batched [`Processor::step_n`] call produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutput {
    /// Program instructions committed across the whole batch.
    pub committed: u64,
    /// Output of the final cycle in the batch (all zeros when `n == 0`).
    pub last: CycleOutput,
}

/// Aggregate statistics for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Program instructions committed.
    pub committed: u64,
    /// No-ops injected into idle issue slots by dI/dt control.
    pub nops_injected: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branches mispredicted.
    pub branch_mispredicts: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L2 misses (data side).
    pub l2_misses: u64,
    /// L2 accesses (data side).
    pub l2_accesses: u64,
    /// I-cache misses.
    pub l1i_misses: u64,
    /// Mean power over the run, in watts.
    pub mean_power: f64,
}

impl SimStats {
    /// Committed program instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// L2 misses per 1000 committed instructions — the paper's axis for
    /// separating Figures 10 and 11.
    #[must_use]
    pub fn l2_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.committed as f64
        }
    }

    /// Branch misprediction rate.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }
}

/// Window-entry states, kept as raw bytes so the issue/writeback scans
/// are single-byte compares over a dense array.
const ST_WAITING: u8 = 0;
const ST_EXECUTING: u8 = 1;
const ST_DONE: u8 = 2;

/// Completion-time ring capacity; must exceed max dependency distance +
/// window size (64 + 80) and be a power of two.
const RING: usize = 256;

/// Dependency slot meaning "no dependency": index of the sentinel slot
/// in `completed_at`, which is pinned to 0 (always satisfied) so the
/// dependency check is one branch-free indexed compare.
const DEP_NONE: u32 = RING as u32;

/// Null link in the per-slot dependency wakeup chains.
const NONE_LINK: u32 = u32::MAX;

/// Cycles over which one cycle's event power is spread (deep-pipeline
/// power staging, per the paper's Wattch modification).
const POWER_SPREAD: usize = 4;
const _: () = assert!(POWER_SPREAD.is_power_of_two());

/// Seed of the data-dependent switching-noise RNG.
const JITTER_SEED: u64 = 0x57A7_1CAC;

fn fresh_completed_at() -> [u64; RING + 1] {
    let mut c = [u64::MAX; RING + 1];
    c[RING] = 0; // the always-ready DEP_NONE sentinel
    c
}

/// Timing-wheel size for a configuration: a power of two strictly above
/// the largest possible issue-to-completion latency (the full L1→L2→
/// memory miss path; divides and everything else sit far below 64).
fn wheel_span(config: &ProcessorConfig) -> usize {
    let max_lat = (config.l1d.latency + config.l2.latency + config.memory_latency).max(64);
    (max_lat as usize + 1).next_power_of_two()
}

/// The instruction window as a flat structure-of-arrays ring.
///
/// Capacity is the configured window size rounded up to a power of two,
/// so position arithmetic is a mask. Alongside the per-entry pipeline
/// fields it carries the scheduler's per-entry state: the ready bitmask
/// (issue candidates in ring order), the outstanding-dependency count,
/// the front-end release flag, and the wakeup-chain links.
#[derive(Debug, Clone)]
struct RobRing {
    seq: Vec<u64>,
    op: Vec<OpClass>,
    frontend_ready: Vec<u64>,
    state: Vec<u8>,
    done_at: Vec<u64>,
    addr: Vec<u64>,
    mispredicted: Vec<bool>,
    /// One bit per position: waiting, released, and all deps complete.
    ready: Vec<u64>,
    /// Dependencies not yet completed (0, 1 or 2).
    deps_outstanding: Vec<u8>,
    /// Front-end delay elapsed (the entry left the in-flight stages).
    released: Vec<bool>,
    /// Next links in the two wakeup chains this entry may sit on
    /// (index 0: via dep1, index 1: via dep2); `NONE_LINK` terminates.
    waker_next: Vec<[u32; 2]>,
    head: usize,
    len: usize,
    mask: usize,
}

impl RobRing {
    fn with_capacity(entries: usize) -> Self {
        let cap = entries.next_power_of_two().max(2);
        RobRing {
            seq: vec![0; cap],
            op: vec![OpClass::Nop; cap],
            frontend_ready: vec![0; cap],
            state: vec![ST_WAITING; cap],
            done_at: vec![0; cap],
            addr: vec![0; cap],
            mispredicted: vec![false; cap],
            ready: vec![0; cap.div_ceil(64)],
            deps_outstanding: vec![0; cap],
            released: vec![false; cap],
            waker_next: vec![[NONE_LINK; 2]; cap],
            head: 0,
            len: 0,
            mask: cap - 1,
        }
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.ready.fill(0);
    }

    #[inline]
    fn set_ready(&mut self, pos: usize) {
        self.ready[pos >> 6] |= 1u64 << (pos & 63);
    }
}

/// The simulated processor, generic over its instruction source.
///
/// # Examples
///
/// ```
/// use didt_uarch::{Benchmark, Processor, ProcessorConfig, WorkloadGenerator};
/// use didt_uarch::pipeline::ControlAction;
///
/// let gen = WorkloadGenerator::new(Benchmark::Gzip.profile(), 1);
/// let mut cpu = Processor::new(ProcessorConfig::table1(), gen);
/// let mut total = 0u32;
/// for _ in 0..30_000 {
///     total += cpu.step(ControlAction::Normal).committed;
/// }
/// assert!(total > 6_000); // sustains real throughput from a cold start
/// ```
#[derive(Debug, Clone)]
pub struct Processor<W> {
    config: ProcessorConfig,
    power_model: PowerModel,
    workload: W,
    icache: Cache,
    data: Hierarchy,
    bpred: BranchPredictor,
    rob: RobRing,
    lsq_occupancy: usize,
    /// Completion cycles indexed by `seq & (RING - 1)`, plus the pinned
    /// sentinel at index `RING` that makes `DEP_NONE` always satisfied.
    completed_at: [u64; RING + 1],
    /// Head of the wakeup chain per completion-ring slot: window
    /// positions waiting on that slot, encoded `(pos << 1) | dep_index`.
    waker_head: [u32; RING],
    /// Timing wheel: positions completing at cycle `c` live in bucket
    /// `c & wheel_mask`. All op latencies are below the wheel span, so a
    /// bucket drained at cycle `c` holds exactly the cycle-`c` finishers.
    wheel: Vec<Vec<u32>>,
    wheel_mask: usize,
    /// Fetched entries whose front-end delay has not yet elapsed; they
    /// form the youngest suffix of the window, starting at
    /// `release_cursor` (front-end delay is constant, so fetch order is
    /// release order).
    unreleased: u32,
    release_cursor: usize,
    next_seq: u64,
    cycle: u64,
    /// Cycle at which fetch may resume; `u64::MAX` while waiting on an
    /// unresolved mispredicted branch.
    fetch_resume_at: u64,
    int_div_busy_until: u64,
    fp_div_busy_until: u64,
    /// Instruction that could not enter the LSQ last cycle, retried first.
    pending: Option<MicroOp>,
    /// Data-dependent switching-activity noise source (deterministic).
    jitter_rng: SmallRng,
    /// Pipelined-structure power spreading: event energy of a cycle is
    /// charged over this many consecutive cycles (the paper's Wattch
    /// modification "to spread the power usage of pipelined structures
    /// over multiple stages").
    spread: [f64; POWER_SPREAD],
    spread_idx: usize,
    stats: SimStats,
    power_accum: f64,
}

impl<W: Iterator<Item = MicroOp>> Processor<W> {
    /// Build a processor running the given instruction stream.
    #[must_use]
    pub fn new(config: ProcessorConfig, workload: W) -> Self {
        Processor {
            config,
            power_model: PowerModel::table1(),
            workload,
            icache: Cache::new(config.l1i),
            data: {
                let mut h = Hierarchy::new(config.l1d, config.l2, config.memory_latency);
                h.set_prefetch(config.stream_prefetch);
                h
            },
            bpred: BranchPredictor::new(config.predictor),
            rob: RobRing::with_capacity(config.ruu_entries),
            lsq_occupancy: 0,
            completed_at: fresh_completed_at(),
            waker_head: [NONE_LINK; RING],
            wheel: {
                let span = wheel_span(&config);
                vec![Vec::new(); span]
            },
            wheel_mask: wheel_span(&config) - 1,
            unreleased: 0,
            release_cursor: 0,
            next_seq: 0,
            cycle: 0,
            fetch_resume_at: 0,
            int_div_busy_until: 0,
            fp_div_busy_until: 0,
            pending: None,
            jitter_rng: SmallRng::seed_from_u64(JITTER_SEED),
            spread: [0.0; POWER_SPREAD],
            spread_idx: 0,
            stats: SimStats::default(),
            power_accum: 0.0,
        }
    }

    /// Rewind the machine to the power-on state of `Processor::new(config,
    /// workload)` while reusing every existing allocation (caches,
    /// predictor tables, window arrays). With an unchanged `config` this
    /// is bit-identical to building a fresh processor — the scratch-reuse
    /// path sweeps and the serve workers lean on — and falls back to a
    /// full rebuild when the geometry changed.
    pub fn reset(&mut self, config: ProcessorConfig, workload: W) {
        if config != self.config {
            *self = Processor::new(config, workload);
            return;
        }
        self.workload = workload;
        self.icache.reset();
        self.data.reset();
        self.bpred.reset();
        self.rob.clear();
        self.lsq_occupancy = 0;
        self.completed_at = fresh_completed_at();
        self.waker_head = [NONE_LINK; RING];
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.unreleased = 0;
        self.release_cursor = 0;
        self.next_seq = 0;
        self.cycle = 0;
        self.fetch_resume_at = 0;
        self.int_div_busy_until = 0;
        self.fp_div_busy_until = 0;
        self.pending = None;
        self.jitter_rng = SmallRng::seed_from_u64(JITTER_SEED);
        self.spread = [0.0; POWER_SPREAD];
        self.spread_idx = 0;
        self.stats = SimStats::default();
        self.power_accum = 0.0;
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` while the front end is blocked (mispredict recovery or
    /// I-cache refill) — a diagnostic hook for tests and tools.
    #[must_use]
    pub fn fetch_blocked(&self) -> bool {
        self.cycle < self.fetch_resume_at
    }

    /// Occupied instruction-window entries — diagnostic hook.
    #[must_use]
    pub fn window_occupancy(&self) -> usize {
        self.rob.len
    }

    /// Statistics so far (mean power is finalized on read).
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.mean_power = if s.cycles == 0 {
            0.0
        } else {
            self.power_accum / s.cycles as f64
        };
        s
    }

    /// Advance the machine one cycle under `action`, returning the
    /// cycle's power/current draw.
    pub fn step(&mut self, action: ControlAction) -> CycleOutput {
        let mut activity = CycleActivity {
            window_occupancy: self.rob.len as u32,
            lsq_occupancy: self.lsq_occupancy as u32,
            ..CycleActivity::default()
        };

        self.commit(&mut activity);
        self.writeback();
        self.release_frontend();
        let issued = if action == ControlAction::StallIssue {
            0
        } else {
            self.issue(&mut activity)
        };
        if action == ControlAction::InjectNops {
            // The no-op injector drives otherwise-idle issue slots with
            // dummy operations, lifting current draw without perturbing
            // the program in the window (paper §5: "no-ops are issued to
            // functional units to increase the current consumption").
            let free = self.config.issue_width - issued.min(self.config.issue_width);
            activity.nops += free;
            self.stats.nops_injected += u64::from(free);
        }
        self.fetch(&mut activity);

        // Wrong-path front-end toggling while recovering from a
        // mispredict (fetch blocked on an unresolved branch).
        if self.fetch_resume_at > self.cycle {
            activity.wrong_path_fetch = self.config.fetch_width / 2;
        }

        let raw_power = self.power_model.cycle_power(&activity);
        // Occupancy/CAM and clock-tree power are deterministic, so a
        // fully stalled cycle draws exactly the same power every time —
        // which is what makes long memory-stall windows non-Gaussian and
        // low-variance, as the paper observes (§4.1, Figures 7 and 11).
        let idle_power = self
            .power_model
            .idle_power(activity.window_occupancy, activity.lsq_occupancy);
        let mut event_power = raw_power - idle_power;
        // Data-dependent switching: jitter the event-driven share of the
        // power (operand-dependent datapath activity).
        if self.power_model.data_jitter > 0.0 && event_power > 0.0 {
            // Unit-variance CLT pseudo-Gaussian from six uniforms.
            let g: f64 = ((0..6).map(|_| self.jitter_rng.random::<f64>()).sum::<f64>() - 3.0)
                / (0.5f64).sqrt();
            event_power = (event_power * (1.0 + self.power_model.data_jitter * g)).max(0.0);
        }
        // Spread event energy across the deep pipeline's stages: charge
        // 1/POWER_SPREAD now and in each of the next stages' cycles.
        // (The rotating window covers every slot, so this is an
        // unconditional add to all of them.)
        let share = event_power / POWER_SPREAD as f64;
        for s in &mut self.spread {
            *s += share;
        }
        let power = idle_power + self.spread[self.spread_idx];
        self.spread[self.spread_idx] = 0.0;
        self.spread_idx = (self.spread_idx + 1) & (POWER_SPREAD - 1);
        let current = power / self.config.vdd;
        self.power_accum += power;
        self.stats.cycles += 1;
        self.cycle += 1;
        CycleOutput {
            current,
            power,
            committed: activity.committed,
        }
    }

    /// Advance the machine `n` cycles under a constant `action`,
    /// equivalent to calling [`Processor::step`] `n` times (the proptest
    /// suite pins the equivalence for arbitrary action schedules). Batch
    /// callers — warmup legs, measured closed-loop runs — use this to
    /// amortize dispatch and skip per-cycle bookkeeping reads.
    pub fn step_n(&mut self, n: u64, action: ControlAction) -> BatchOutput {
        let mut committed = 0u64;
        let mut last = CycleOutput {
            current: 0.0,
            power: 0.0,
            committed: 0,
        };
        for _ in 0..n {
            last = self.step(action);
            committed += u64::from(last.committed);
        }
        BatchOutput { committed, last }
    }

    /// Advance `n` cycles under a constant `action`, appending each
    /// cycle's current draw to `trace`. Returns the instructions
    /// committed across the batch. Bit-identical to per-cycle `step`
    /// with a push per cycle.
    pub fn step_trace(&mut self, n: u64, action: ControlAction, trace: &mut Vec<f64>) -> u64 {
        trace.reserve(n as usize);
        let mut committed = 0u64;
        for _ in 0..n {
            let out = self.step(action);
            trace.push(out.current);
            committed += u64::from(out.committed);
        }
        committed
    }

    fn commit(&mut self, activity: &mut CycleActivity) {
        let mut committed = 0;
        while committed < self.config.commit_width && self.rob.len > 0 {
            let h = self.rob.head;
            if self.rob.state[h] != ST_DONE {
                break;
            }
            if self.rob.op[h].is_memory() {
                self.lsq_occupancy -= 1;
            }
            self.rob.head = (h + 1) & self.rob.mask;
            self.rob.len -= 1;
            self.stats.committed += 1;
            committed += 1;
        }
        activity.committed = committed;
    }

    /// Complete every instruction whose latency expires this cycle: drain
    /// the cycle's timing-wheel bucket, publish completion times, and wake
    /// dependents. Identical decisions (and, for mispredict resolution,
    /// identical last-wins ring order — same-latency branches enter a
    /// bucket oldest-first) to the original full-window scan.
    fn writeback(&mut self) {
        let idx = (self.cycle as usize) & self.wheel_mask;
        if self.wheel[idx].is_empty() {
            return;
        }
        let mut bucket = std::mem::take(&mut self.wheel[idx]);
        let mut resolve_mispredict = None;
        for &raw in &bucket {
            let p = raw as usize;
            debug_assert_eq!(self.rob.state[p], ST_EXECUTING);
            debug_assert_eq!(self.rob.done_at[p], self.cycle);
            let done = self.rob.done_at[p];
            self.rob.state[p] = ST_DONE;
            let slot = (self.rob.seq[p] as usize) & (RING - 1);
            self.completed_at[slot] = done;
            if self.rob.mispredicted[p] {
                resolve_mispredict = Some(done);
            }
            // Wake everything chained on this completion slot.
            let mut link = std::mem::replace(&mut self.waker_head[slot], NONE_LINK);
            while link != NONE_LINK {
                let pos = (link >> 1) as usize;
                let which = (link & 1) as usize;
                link = self.rob.waker_next[pos][which];
                self.rob.deps_outstanding[pos] -= 1;
                if self.rob.deps_outstanding[pos] == 0 && self.rob.released[pos] {
                    self.rob.set_ready(pos);
                }
            }
        }
        bucket.clear();
        self.wheel[idx] = bucket;
        if let Some(done) = resolve_mispredict {
            // Front-end refill after redirect.
            self.fetch_resume_at = done + u64::from(self.config.frontend_depth);
        }
    }

    /// Mark entries whose front-end delay elapsed as released; those with
    /// no outstanding dependencies become issue candidates. Fetch order is
    /// release order (the delay is constant), so this is a FIFO drain of
    /// the window's youngest suffix.
    fn release_frontend(&mut self) {
        let cycle = self.cycle;
        while self.unreleased > 0 {
            let p = self.release_cursor;
            if self.rob.frontend_ready[p] > cycle {
                break;
            }
            self.rob.released[p] = true;
            if self.rob.deps_outstanding[p] == 0 {
                self.rob.set_ready(p);
            }
            self.release_cursor = (p + 1) & self.rob.mask;
            self.unreleased -= 1;
        }
    }

    fn issue(&mut self, activity: &mut CycleActivity) -> u32 {
        if self.rob.ready.iter().all(|&w| w == 0) {
            return 0;
        }
        let mut issued = 0;
        let mut int_alu = 0;
        let mut int_mult = 0;
        let mut fp_alu = 0;
        let mut fp_mult = 0;
        let mut mem_ports = 0;
        let cycle = self.cycle;
        let units = self.config.units;
        let width = self.config.issue_width;
        // Oldest-first issue priority: walk the ready bitmask in ring
        // order from the head. Every set bit is a waiting entry whose
        // front-end delay elapsed and whose dependencies all completed —
        // the exact set the original full-window scan would attempt, in
        // the same order, so functional-unit arbitration is identical.
        let nwords = self.rob.ready.len();
        let hw = self.rob.head >> 6;
        let hb = self.rob.head & 63;
        'scan: for i in 0..=nwords {
            let w = (hw + i) % nwords;
            let mut bits = self.rob.ready[w];
            if i == 0 {
                bits &= !0u64 << hb;
            } else if i == nwords {
                bits &= !(!0u64 << hb);
            }
            while bits != 0 {
                if issued >= width {
                    break 'scan;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let p = (w << 6) | b;
                debug_assert_eq!(self.rob.state[p], ST_WAITING);
                let op = self.rob.op[p];
                // Functional-unit availability.
                let lat: u32 = match op {
                    OpClass::IntAlu | OpClass::Branch | OpClass::Nop => {
                        if int_alu >= units.int_alu {
                            continue;
                        }
                        int_alu += 1;
                        match op {
                            OpClass::Nop => activity.nops += 1,
                            _ => activity.int_alu += 1,
                        }
                        op.base_latency()
                    }
                    OpClass::IntMult => {
                        if int_mult >= units.int_mult || self.int_div_busy_until > cycle {
                            continue;
                        }
                        int_mult += 1;
                        activity.int_mult += 1;
                        op.base_latency()
                    }
                    OpClass::IntDiv => {
                        if int_mult >= units.int_mult || self.int_div_busy_until > cycle {
                            continue;
                        }
                        int_mult += 1;
                        self.int_div_busy_until = cycle + u64::from(op.base_latency());
                        activity.int_div += 1;
                        op.base_latency()
                    }
                    OpClass::FpAlu => {
                        if fp_alu >= units.fp_alu {
                            continue;
                        }
                        fp_alu += 1;
                        activity.fp_alu += 1;
                        op.base_latency()
                    }
                    OpClass::FpMult => {
                        if fp_mult >= units.fp_mult || self.fp_div_busy_until > cycle {
                            continue;
                        }
                        fp_mult += 1;
                        activity.fp_mult += 1;
                        op.base_latency()
                    }
                    OpClass::FpDiv => {
                        if fp_mult >= units.fp_mult || self.fp_div_busy_until > cycle {
                            continue;
                        }
                        fp_mult += 1;
                        self.fp_div_busy_until = cycle + u64::from(op.base_latency());
                        activity.fp_div += 1;
                        op.base_latency()
                    }
                    OpClass::Load => {
                        if mem_ports >= units.mem_ports {
                            continue;
                        }
                        mem_ports += 1;
                        let (level, lat) = self.data.access(self.rob.addr[p]);
                        activity.loads += 1;
                        self.stats.l1d_accesses += 1;
                        match level {
                            AccessLevel::L1 => {}
                            AccessLevel::L2 => {
                                self.stats.l1d_misses += 1;
                                self.stats.l2_accesses += 1;
                                activity.l2_accesses += 1;
                            }
                            AccessLevel::Memory => {
                                self.stats.l1d_misses += 1;
                                self.stats.l2_accesses += 1;
                                self.stats.l2_misses += 1;
                                activity.l2_accesses += 1;
                                activity.mem_accesses += 1;
                            }
                        }
                        lat
                    }
                    OpClass::Store => {
                        if mem_ports >= units.mem_ports {
                            continue;
                        }
                        mem_ports += 1;
                        // Stores complete into the store buffer; the line fill
                        // still exercises the hierarchy for power/miss stats.
                        let (level, _) = self.data.access(self.rob.addr[p]);
                        activity.stores += 1;
                        self.stats.l1d_accesses += 1;
                        match level {
                            AccessLevel::L1 => {}
                            AccessLevel::L2 => {
                                self.stats.l1d_misses += 1;
                                self.stats.l2_accesses += 1;
                                activity.l2_accesses += 1;
                            }
                            AccessLevel::Memory => {
                                self.stats.l1d_misses += 1;
                                self.stats.l2_accesses += 1;
                                self.stats.l2_misses += 1;
                                activity.l2_accesses += 1;
                                activity.mem_accesses += 1;
                            }
                        }
                        1
                    }
                };
                self.rob.state[p] = ST_EXECUTING;
                debug_assert!((lat as usize) <= self.wheel_mask);
                let done = cycle + u64::from(lat);
                self.rob.done_at[p] = done;
                self.rob.ready[w] &= !(1u64 << b);
                self.wheel[(done as usize) & self.wheel_mask].push(p as u32);
                issued += 1;
            }
        }
        issued
    }

    fn fetch(&mut self, activity: &mut CycleActivity) {
        if self.cycle < self.fetch_resume_at {
            return;
        }
        let mut fetched = 0;
        while fetched < self.config.fetch_width {
            if self.rob.len >= self.config.ruu_entries {
                break;
            }
            let uop = if let Some(p) = self.pending.take() {
                p
            } else {
                match self.workload.next() {
                    Some(u) => u,
                    None => break,
                }
            };
            if uop.op.is_memory() && self.lsq_occupancy >= self.config.lsq_entries {
                // Structural stall: buffer the instruction and retry it
                // at the head of the next fetch group.
                self.pending = Some(uop);
                break;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.completed_at[(seq as usize) & (RING - 1)] = u64::MAX;
            let dep_slot = |dist: u32| -> u32 {
                if dist == 0 || u64::from(dist) > seq {
                    DEP_NONE
                } else {
                    (((seq - u64::from(dist)) as usize) & (RING - 1)) as u32
                }
            };
            let mut mispredicted = false;
            // I-cache.
            if !uop.is_nop_pc() && !self.icache.access(uop.pc) {
                self.stats.l1i_misses += 1;
                // Refill from L2 stalls the front end.
                self.fetch_resume_at = self.cycle + u64::from(self.config.l2.latency);
            }
            activity.fetched += 1;
            self.stats.fetched += 1;
            if uop.op.is_memory() {
                self.lsq_occupancy += 1;
            }
            let mut stop_group = false;
            if uop.op == OpClass::Branch {
                activity.branches += 1;
                self.stats.branches += 1;
                let predicted = self.bpred.predict_and_update(uop.pc, uop.taken);
                if uop.taken {
                    if !self.bpred.btb_lookup(uop.pc) {
                        self.bpred.btb_insert(uop.pc);
                    }
                    stop_group = true; // taken branch ends the fetch group
                }
                if predicted != uop.taken {
                    self.stats.branch_mispredicts += 1;
                    mispredicted = true;
                    // Block fetch until the branch resolves.
                    self.fetch_resume_at = u64::MAX;
                    stop_group = true;
                }
            }
            let tail = (self.rob.head + self.rob.len) & self.rob.mask;
            self.rob.seq[tail] = seq;
            self.rob.op[tail] = uop.op;
            self.rob.frontend_ready[tail] = self.cycle + u64::from(self.config.frontend_depth);
            self.rob.state[tail] = ST_WAITING;
            self.rob.done_at[tail] = u64::MAX;
            self.rob.addr[tail] = uop.addr;
            self.rob.mispredicted[tail] = mispredicted;
            // Register on the wakeup chains of still-outstanding
            // dependencies (a slot already holding a finite completion
            // time is satisfied forever — time only moves forward). Two
            // deps on the same slot collapse to one chain membership so a
            // single completion satisfies both.
            let d1 = dep_slot(uop.dep1);
            let mut d2 = dep_slot(uop.dep2);
            if d2 == d1 {
                d2 = DEP_NONE;
            }
            let mut outstanding = 0u8;
            for (which, d) in [(0usize, d1), (1usize, d2)] {
                let d = d as usize;
                if d != DEP_NONE as usize && self.completed_at[d] == u64::MAX {
                    outstanding += 1;
                    self.rob.waker_next[tail][which] = std::mem::replace(
                        &mut self.waker_head[d],
                        ((tail as u32) << 1) | which as u32,
                    );
                }
            }
            self.rob.deps_outstanding[tail] = outstanding;
            self.rob.released[tail] = false;
            self.unreleased += 1;
            self.rob.len += 1;
            fetched += 1;
            if stop_group || self.cycle < self.fetch_resume_at {
                break;
            }
        }
        activity.dispatched = fetched;
    }
}

// Small extension so fetch() can skip I-cache traffic for injected nops.
impl MicroOp {
    fn is_nop_pc(&self) -> bool {
        self.op == OpClass::Nop
    }
}

impl<W: Iterator<Item = MicroOp>> Processor<W> {
    /// Diagnostic: fetch is blocked specifically on an unresolved branch.
    #[must_use]
    #[doc(hidden)]
    pub fn fetch_block_is_unresolved_branch(&self) -> bool {
        self.fetch_resume_at == u64::MAX
    }
}

impl<W: Iterator<Item = MicroOp>> Processor<W> {
    /// Diagnostic: ROB head snapshot `(op, state_code, wait_cycles)` where
    /// state_code is 0=waiting, 1=executing, 2=done.
    #[must_use]
    #[doc(hidden)]
    pub fn head_snapshot(&self) -> Option<(OpClass, u8, u64)> {
        if self.rob.len == 0 {
            return None;
        }
        let h = self.rob.head;
        let state = self.rob.state[h];
        let done_at = self.rob.done_at[h];
        let wait = if state == ST_EXECUTING && done_at != u64::MAX {
            done_at.saturating_sub(self.cycle)
        } else {
            0
        };
        Some((self.rob.op[h], state, wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Benchmark, WorkloadGenerator};

    fn run(bench: Benchmark, cycles: u64) -> (SimStats, Vec<f64>) {
        let gen = WorkloadGenerator::new(bench.profile(), 11);
        let mut cpu = Processor::new(ProcessorConfig::table1(), gen);
        let mut trace = Vec::with_capacity(cycles as usize);
        for _ in 0..cycles {
            trace.push(cpu.step(ControlAction::Normal).current);
        }
        (cpu.stats(), trace)
    }

    #[test]
    fn reaches_reasonable_ipc_on_cache_friendly_load() {
        // Warm caches/predictors, then measure steady state.
        let gen = WorkloadGenerator::new(Benchmark::Gzip.profile(), 11);
        let mut cpu = Processor::new(ProcessorConfig::table1(), gen);
        for _ in 0..30_000 {
            cpu.step(ControlAction::Normal);
        }
        let before = cpu.stats().committed;
        for _ in 0..30_000 {
            cpu.step(ControlAction::Normal);
        }
        let ipc = (cpu.stats().committed - before) as f64 / 30_000.0;
        assert!(ipc > 0.4, "gzip steady-state ipc {ipc}");
        assert!(ipc <= 4.0);
    }

    #[test]
    fn memory_bound_benchmark_has_low_ipc_and_high_mpki() {
        let (mcf, _) = run(Benchmark::Mcf, 60_000);
        let (gzip, _) = run(Benchmark::Gzip, 60_000);
        assert!(
            mcf.ipc() < gzip.ipc(),
            "mcf {} vs gzip {}",
            mcf.ipc(),
            gzip.ipc()
        );
        assert!(
            mcf.l2_mpki() > 3.0 * gzip.l2_mpki().max(0.01),
            "mcf mpki {} gzip mpki {}",
            mcf.l2_mpki(),
            gzip.l2_mpki()
        );
    }

    #[test]
    fn current_trace_is_bounded_and_varies() {
        let (_, trace) = run(Benchmark::Gcc, 20_000);
        let min = trace.iter().copied().fold(f64::INFINITY, f64::min);
        let max = trace.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min >= 9.0, "min current {min}");
        assert!(max <= 120.0, "max current {max}");
        assert!(max - min > 10.0, "no variation: {min}..{max}");
    }

    #[test]
    fn stall_issue_cuts_current() {
        let gen = WorkloadGenerator::new(Benchmark::Sixtrack.profile(), 5);
        let mut cpu = Processor::new(ProcessorConfig::table1(), gen);
        for _ in 0..20_000 {
            cpu.step(ControlAction::Normal);
        }
        let mut normal = 0.0;
        for _ in 0..5000 {
            normal += cpu.step(ControlAction::Normal).current;
        }
        normal /= 5000.0;
        // Let in-flight work (up to memory_latency = 250 cycles of it)
        // drain before measuring: the assertion is about steady-state
        // stalled current, not the ramp-down.
        for _ in 0..400 {
            cpu.step(ControlAction::StallIssue);
        }
        let mut stalled = 0.0;
        for _ in 0..200 {
            stalled += cpu.step(ControlAction::StallIssue).current;
        }
        stalled /= 200.0;
        // A stalled machine cannot drop below the clock-tree base plus
        // the occupancy (CAM) power of the full window it is holding, so
        // the meaningful property is that stalling eliminates the
        // event-driven power — current collapses to that idle floor.
        let m = crate::power::PowerModel::table1();
        let cfg = ProcessorConfig::table1();
        let floor = (m.base
            + m.window_entry * cfg.ruu_entries as f64
            + m.lsq_entry * cfg.lsq_entries as f64)
            / cfg.vdd;
        assert!(stalled < normal, "stalled {stalled} vs normal {normal}");
        assert!(
            stalled <= floor + 0.1,
            "stalled {stalled} above idle floor {floor}"
        );
    }

    #[test]
    fn stall_issue_stops_commits() {
        let gen = WorkloadGenerator::new(Benchmark::Gzip.profile(), 5);
        let mut cpu = Processor::new(ProcessorConfig::table1(), gen);
        for _ in 0..2000 {
            cpu.step(ControlAction::Normal);
        }
        // After draining in-flight work, stalling issue halts commits.
        let mut committed = 0;
        for _ in 0..300 {
            committed += cpu.step(ControlAction::StallIssue).committed;
        }
        // In-flight instructions may drain early in the stall window, but
        // the tail must be fully quiet.
        let mut tail = 0;
        for _ in 0..100 {
            tail += cpu.step(ControlAction::StallIssue).committed;
        }
        assert_eq!(
            tail, 0,
            "commits during sustained stall (drain saw {committed})"
        );
    }

    #[test]
    fn inject_nops_raises_current_when_memory_bound() {
        // Park the machine on a memory-bound workload, then inject nops:
        // current must rise (idle issue slots get filled).
        let gen = WorkloadGenerator::new(Benchmark::Mcf.profile(), 5);
        let mut cpu = Processor::new(ProcessorConfig::table1(), gen);
        for _ in 0..20_000 {
            cpu.step(ControlAction::Normal);
        }
        let mut normal = 0.0;
        for _ in 0..500 {
            normal += cpu.step(ControlAction::Normal).current;
        }
        normal /= 500.0;
        let mut with_nops = 0.0;
        for _ in 0..500 {
            with_nops += cpu.step(ControlAction::InjectNops).current;
        }
        with_nops /= 500.0;
        assert!(
            with_nops > normal + 2.0,
            "nops {with_nops} vs normal {normal}"
        );
    }

    #[test]
    fn nop_injection_is_tracked_and_does_not_block_program() {
        let gen = WorkloadGenerator::new(Benchmark::Gzip.profile(), 5);
        let mut cpu = Processor::new(ProcessorConfig::table1(), gen);
        for _ in 0..2000 {
            cpu.step(ControlAction::Normal);
        }
        let before = cpu.stats();
        for _ in 0..2000 {
            cpu.step(ControlAction::InjectNops);
        }
        let s = cpu.stats();
        // Idle slots got filled...
        assert!(s.nops_injected > 1000, "nops injected {}", s.nops_injected);
        // ...while the program kept committing at a similar rate.
        assert!(s.committed > before.committed);
    }

    #[test]
    fn branch_mispredicts_happen_and_stall_fetch() {
        let (stats, _) = run(Benchmark::Gcc, 60_000);
        assert!(stats.branches > 500, "branches {}", stats.branches);
        let rate = stats.mispredict_rate();
        assert!((0.01..0.4).contains(&rate), "mispredict rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = run(Benchmark::Vpr, 5000);
        let (_, b) = run(Benchmark::Vpr, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_workload_idles() {
        let mut cpu = Processor::new(ProcessorConfig::table1(), std::iter::empty());
        let mut last = 0.0;
        for _ in 0..100 {
            last = cpu.step(ControlAction::Normal).current;
        }
        // Only base power.
        assert!((last - 10.0).abs() < 1.0, "idle current {last}");
        assert_eq!(cpu.stats().committed, 0);
    }

    #[test]
    fn unpipelined_divides_serialize() {
        // A stream of only IntDiv ops: the single unpipelined divider
        // bounds throughput at one per 20 cycles.
        let stream = std::iter::repeat(MicroOp {
            op: OpClass::IntDiv,
            dep1: 0,
            dep2: 0,
            addr: 0,
            taken: false,
            branch_site: 0,
            pc: 0x40_0000,
        });
        let mut cpu = Processor::new(ProcessorConfig::table1(), stream);
        for _ in 0..4_000 {
            cpu.step(ControlAction::Normal);
        }
        let ipc = cpu.stats().ipc();
        assert!(ipc < 0.06, "div-only ipc {ipc} exceeds the divider bound");
        assert!(ipc > 0.03, "div-only ipc {ipc} below the divider bound");
    }

    #[test]
    fn lsq_full_stalls_but_preserves_instructions() {
        // All loads that miss to memory: the 40-entry LSQ fills, fetch
        // stalls via the pending-retry path, and every instruction still
        // commits exactly once (none dropped or duplicated).
        let mut n = 0u64;
        let stream = std::iter::from_fn(move || {
            n += 1;
            Some(MicroOp {
                op: OpClass::Load,
                dep1: 0,
                dep2: 0,
                // New line every access, 64 MB apart reuse: always misses.
                addr: 0x8000_0000 + n * 64 * 131,
                taken: false,
                branch_site: 0,
                pc: 0x40_0000,
            })
        });
        let mut cfg = ProcessorConfig::table1();
        cfg.stream_prefetch = false;
        let mut cpu = Processor::new(cfg, stream);
        let mut committed = 0u64;
        for _ in 0..60_000 {
            committed += u64::from(cpu.step(ControlAction::Normal).committed);
        }
        assert_eq!(committed, cpu.stats().committed);
        // Rough bandwidth check: 2 ports, 269-cycle misses, 40-entry LSQ
        // allows ~40 outstanding → IPC around 40/269 ≈ 0.15.
        let ipc = cpu.stats().ipc();
        assert!((0.05..0.4).contains(&ipc), "mem-bound load ipc {ipc}");
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // Jump over a large code footprint: I-cache misses must register
        // and fetch must stall (low IPC despite trivial instructions).
        let mut n = 0u64;
        let stream = std::iter::from_fn(move || {
            n += 1;
            Some(MicroOp {
                op: OpClass::IntAlu,
                dep1: 0,
                dep2: 0,
                addr: 0,
                taken: false,
                branch_site: 0,
                // stride through 1 MB of code
                pc: 0x40_0000 + (n * 64) % (1 << 20),
            })
        });
        let mut cpu = Processor::new(ProcessorConfig::table1(), stream);
        for _ in 0..30_000 {
            cpu.step(ControlAction::Normal);
        }
        let s = cpu.stats();
        assert!(s.l1i_misses > 1_000, "i$ misses {}", s.l1i_misses);
    }

    #[test]
    fn lsq_bounded() {
        let (stats, _) = run(Benchmark::Swim, 20_000);
        // Sanity: the run completes without panicking and commits work.
        assert!(stats.committed > 1000);
    }

    #[test]
    fn step_n_matches_repeated_step_on_mixed_schedule() {
        // Alternate all three actions in irregular batch sizes: the
        // batched path must replay the exact same machine.
        let schedule = [
            (ControlAction::Normal, 777u64),
            (ControlAction::StallIssue, 63),
            (ControlAction::InjectNops, 129),
            (ControlAction::Normal, 2048),
            (ControlAction::StallIssue, 1),
            (ControlAction::Normal, 500),
        ];
        let gen_a = WorkloadGenerator::new(Benchmark::Gcc.profile(), 7);
        let gen_b = WorkloadGenerator::new(Benchmark::Gcc.profile(), 7);
        let mut a = Processor::new(ProcessorConfig::table1(), gen_a);
        let mut b = Processor::new(ProcessorConfig::table1(), gen_b);
        for &(action, n) in &schedule {
            let mut committed = 0u64;
            let mut last = None;
            for _ in 0..n {
                let out = a.step(action);
                committed += u64::from(out.committed);
                last = Some(out);
            }
            let batch = b.step_n(n, action);
            assert_eq!(batch.committed, committed);
            assert_eq!(Some(batch.last), last);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn step_trace_matches_per_cycle_capture() {
        let gen_a = WorkloadGenerator::new(Benchmark::Swim.profile(), 3);
        let gen_b = WorkloadGenerator::new(Benchmark::Swim.profile(), 3);
        let mut a = Processor::new(ProcessorConfig::table1(), gen_a);
        let mut b = Processor::new(ProcessorConfig::table1(), gen_b);
        let mut expect = Vec::new();
        let mut committed = 0u64;
        for _ in 0..3000 {
            let out = a.step(ControlAction::Normal);
            expect.push(out.current);
            committed += u64::from(out.committed);
        }
        let mut got = Vec::new();
        let got_committed = b.step_trace(3000, ControlAction::Normal, &mut got);
        assert_eq!(got, expect);
        assert_eq!(got_committed, committed);
    }

    #[test]
    fn reset_is_bit_identical_to_fresh_processor() {
        let cfg = ProcessorConfig::table1();
        // Dirty a processor thoroughly on one benchmark...
        let mut cpu = Processor::new(cfg, WorkloadGenerator::new(Benchmark::Mcf.profile(), 9));
        cpu.step_n(20_000, ControlAction::Normal);
        // ...then recycle it onto another and compare against cold-start.
        cpu.reset(cfg, WorkloadGenerator::new(Benchmark::Gcc.profile(), 4));
        let mut fresh = Processor::new(cfg, WorkloadGenerator::new(Benchmark::Gcc.profile(), 4));
        for _ in 0..20_000 {
            let a = cpu.step(ControlAction::Normal);
            let b = fresh.step(ControlAction::Normal);
            assert_eq!(a, b);
        }
        assert_eq!(cpu.stats(), fresh.stats());
    }

    #[test]
    fn reset_with_new_geometry_rebuilds() {
        let mut cpu = Processor::new(
            ProcessorConfig::table1(),
            WorkloadGenerator::new(Benchmark::Gzip.profile(), 1),
        );
        cpu.step_n(1000, ControlAction::Normal);
        let wide = ProcessorConfig::with_width(8);
        cpu.reset(wide, WorkloadGenerator::new(Benchmark::Gzip.profile(), 1));
        assert_eq!(cpu.config(), &wide);
        assert_eq!(cpu.cycle(), 0);
        let mut fresh = Processor::new(wide, WorkloadGenerator::new(Benchmark::Gzip.profile(), 1));
        for _ in 0..5000 {
            assert_eq!(
                cpu.step(ControlAction::Normal),
                fresh.step(ControlAction::Normal)
            );
        }
    }
}
