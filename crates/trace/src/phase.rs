//! SimPoint-style phase clustering over recorded traces.
//!
//! Long workloads are phase-structured: a few behaviors repeat, so a
//! handful of representative slices — weighted by how much of the run
//! each behavior covers — characterize the whole trace at a fraction of
//! the simulated cycles (Sherwood et al.'s `SimPoint`, applied here to
//! dI/dt characterization instead of IPC).
//!
//! The pipeline, all deterministic in `(records, config)`:
//!
//! 1. Cut the trace into fixed-length intervals
//!    ([`PhaseConfig::interval`] cycles; a trailing partial interval is
//!    dropped).
//! 2. Summarize each interval as a signature vector: mean and standard
//!    deviation of current, mean power, commit rate, and per-scale Haar
//!    wavelet variances of the current (via `didt-dsp`) — the scales
//!    are exactly the features the voltage-variance model consumes, so
//!    intervals that cluster together stress the PDN alike.
//! 3. Z-score each feature column, then k-means with deterministic
//!    k-means++ seeding (splitmix64 stream from [`PhaseConfig::seed`],
//!    lowest-index tie-breaking).
//! 4. Elect per-cluster representatives: the member interval closest to
//!    the centroid, weighted by cluster population.
//!
//! The `ext_phase_clustering` experiment validates the result: weighted
//! representative-slice estimates of the emergency fraction track the
//! full-trace ground truth at ≥10× fewer simulated cycles.

use didt_dsp::{dwt, scale_variances, wavelet::Haar};

use crate::record::Record;

/// Configuration for [`cluster_records`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseConfig {
    /// Cycles per interval. Must be a positive multiple of
    /// `2^levels` so each interval supports the signature DWT.
    pub interval: usize,
    /// Number of clusters `k` (clamped to the interval count).
    pub clusters: usize,
    /// Haar decomposition depth used for the signature's per-scale
    /// variances.
    pub levels: usize,
    /// Seed of the deterministic k-means++ initialization.
    pub seed: u64,
    /// Lloyd-iteration cap (convergence usually takes far fewer).
    pub max_iters: usize,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            interval: 2_048,
            clusters: 6,
            levels: 4,
            seed: 0x51A9_0CA7,
            max_iters: 64,
        }
    }
}

/// Phase-clustering failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseError {
    /// A config field is out of range (zero interval/clusters, or an
    /// interval not divisible by `2^levels`).
    InvalidConfig(&'static str),
    /// The trace is shorter than one interval.
    TooFewIntervals {
        /// Complete intervals available in the trace.
        have: usize,
    },
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseError::InvalidConfig(what) => write!(f, "invalid phase config: {what}"),
            PhaseError::TooFewIntervals { have } => {
                write!(f, "trace has only {have} complete intervals")
            }
        }
    }
}

impl std::error::Error for PhaseError {}

/// A cluster's elected representative interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Representative {
    /// Cluster index this representative speaks for.
    pub cluster: usize,
    /// Interval index within the trace (slice starts at
    /// `interval * PhaseConfig::interval` cycles).
    pub interval: usize,
    /// Fraction of all intervals assigned to this cluster; weights sum
    /// to 1 over the representatives.
    pub weight: f64,
}

/// The result of clustering a trace's intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseClustering {
    /// Cluster index of each interval, in trace order.
    pub assignments: Vec<usize>,
    /// Cluster centroids in the normalized feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Intervals per cluster (indexes parallel `centroids`).
    pub sizes: Vec<usize>,
    /// Sum of squared distances of every interval to its centroid.
    pub inertia: f64,
    /// One elected representative per non-empty cluster, ordered by
    /// cluster index.
    pub representatives: Vec<Representative>,
    /// Number of complete intervals clustered.
    pub intervals: usize,
    /// Interval length in cycles (copied from the config).
    pub interval: usize,
}

impl PhaseClustering {
    /// Weighted estimate over the representatives: `Σ wᵢ · f(repᵢ)`.
    ///
    /// With `f` an analysis of the representative's slice (emergency
    /// fraction, mean power, …), this is the `SimPoint` estimate of the
    /// full-trace value from `k` slices.
    pub fn weighted_estimate(&self, mut f: impl FnMut(&Representative) -> f64) -> f64 {
        self.representatives.iter().map(|r| r.weight * f(r)).sum()
    }

    /// Cycles a consumer simulates when it evaluates every
    /// representative slice once (without any per-slice warm-in).
    #[must_use]
    pub fn representative_cycles(&self) -> usize {
        self.representatives.len() * self.interval
    }
}

/// The splitmix64 step: a tiny, well-mixed deterministic stream for the
/// k-means++ draws (no dependence on the vendored `rand`, so the crate
/// stays leaf-light).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the splitmix64 stream (53-bit).
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Signature vectors for each complete interval of `records`.
///
/// Feature order: mean current, current standard deviation, mean power,
/// commit rate (instructions/cycle), then `levels` per-scale Haar
/// variances of the current (finest first).
///
/// # Errors
///
/// [`PhaseError::InvalidConfig`] for a zero or non-`2^levels`-divisible
/// interval; [`PhaseError::TooFewIntervals`] when the trace is shorter
/// than one interval.
pub fn interval_signatures(
    records: &[Record],
    cfg: &PhaseConfig,
) -> Result<Vec<Vec<f64>>, PhaseError> {
    if cfg.interval == 0 {
        return Err(PhaseError::InvalidConfig("interval must be positive"));
    }
    if cfg.levels == 0 || cfg.levels >= 63 {
        return Err(PhaseError::InvalidConfig("levels must be in 1..=62"));
    }
    if !cfg.interval.is_multiple_of(1usize << cfg.levels) {
        return Err(PhaseError::InvalidConfig(
            "interval must be a multiple of 2^levels",
        ));
    }
    let n = records.len() / cfg.interval;
    if n == 0 {
        return Err(PhaseError::TooFewIntervals { have: 0 });
    }
    let mut sigs = Vec::with_capacity(n);
    let mut currents = vec![0.0f64; cfg.interval];
    for i in 0..n {
        let slice = &records[i * cfg.interval..(i + 1) * cfg.interval];
        let inv = 1.0 / cfg.interval as f64;
        let mut mean_i = 0.0;
        let mut mean_p = 0.0;
        let mut committed = 0u64;
        for (dst, r) in currents.iter_mut().zip(slice) {
            *dst = r.current;
            mean_i += r.current;
            mean_p += r.power;
            committed += u64::from(r.committed);
        }
        mean_i *= inv;
        mean_p *= inv;
        let var = slice
            .iter()
            .map(|r| (r.current - mean_i) * (r.current - mean_i))
            .sum::<f64>()
            * inv;
        let mut sig = vec![mean_i, var.sqrt(), mean_p, committed as f64 * inv];
        let decomp = dwt(&currents, &Haar, cfg.levels)
            .map_err(|_| PhaseError::InvalidConfig("interval does not support DWT depth"))?;
        let scales =
            scale_variances(&decomp).map_err(|_| PhaseError::InvalidConfig("DWT scales"))?;
        sig.extend(scales.iter().map(|s| s.variance));
        sigs.push(sig);
    }
    Ok(sigs)
}

/// Z-score each feature column in place; zero-variance columns are
/// zeroed (they carry no clustering information — e.g. power/commit
/// features of a kind-1 trace).
fn normalize_columns(sigs: &mut [Vec<f64>]) {
    if sigs.is_empty() {
        return;
    }
    let dims = sigs[0].len();
    let n = sigs.len() as f64;
    for d in 0..dims {
        let mean = sigs.iter().map(|s| s[d]).sum::<f64>() / n;
        let var = sigs
            .iter()
            .map(|s| (s[d] - mean) * (s[d] - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        if std > 0.0 {
            for s in sigs.iter_mut() {
                s[d] = (s[d] - mean) / std;
            }
        } else {
            for s in sigs.iter_mut() {
                s[d] = 0.0;
            }
        }
    }
}

/// Deterministic k-means++ seeding followed by Lloyd iterations.
fn kmeans(sigs: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> (Vec<usize>, Vec<Vec<f64>>) {
    let n = sigs.len();
    let mut rng = seed;
    // k-means++: first centroid uniform, then proportional to squared
    // distance from the nearest chosen centroid.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(sigs[(splitmix64(&mut rng) % n as u64) as usize].clone());
    let mut dist: Vec<f64> = sigs
        .iter()
        .map(|s| squared_distance(s, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist.iter().sum();
        let pick = if total > 0.0 {
            let r = unit_f64(&mut rng) * total;
            let mut cum = 0.0;
            let mut chosen = n - 1;
            for (i, &d) in dist.iter().enumerate() {
                cum += d;
                if cum >= r {
                    chosen = i;
                    break;
                }
            }
            chosen
        } else {
            // All points coincide with a centroid; any pick works.
            (splitmix64(&mut rng) % n as u64) as usize
        };
        centroids.push(sigs[pick].clone());
        for (d, s) in dist.iter_mut().zip(sigs) {
            let nd = squared_distance(s, centroids.last().unwrap());
            if nd < *d {
                *d = nd;
            }
        }
    }
    // Lloyd: assign (lowest index wins ties), recompute, repeat.
    let dims = sigs[0].len();
    let mut assignments = vec![0usize; n];
    for _ in 0..max_iters {
        let mut changed = false;
        for (a, s) in assignments.iter_mut().zip(sigs) {
            let mut best = 0usize;
            let mut best_d = squared_distance(s, &centroids[0]);
            for (c, centroid) in centroids.iter().enumerate().skip(1) {
                let d = squared_distance(s, centroid);
                if d < best_d {
                    best = c;
                    best_d = d;
                }
            }
            if *a != best {
                *a = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (&a, s) in assignments.iter().zip(sigs) {
            counts[a] += 1;
            for (acc, v) in sums[a].iter_mut().zip(s) {
                *acc += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for (dst, acc) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = acc * inv;
                }
            }
            // Empty clusters keep their centroid (deterministic; they
            // simply elect no representative).
        }
    }
    (assignments, centroids)
}

/// Cluster precomputed signatures (normalization happens here).
///
/// # Errors
///
/// [`PhaseError::InvalidConfig`] for zero clusters,
/// [`PhaseError::TooFewIntervals`] for an empty signature list.
pub fn cluster_signatures(
    signatures: &[Vec<f64>],
    cfg: &PhaseConfig,
) -> Result<PhaseClustering, PhaseError> {
    if cfg.clusters == 0 {
        return Err(PhaseError::InvalidConfig("clusters must be positive"));
    }
    let n = signatures.len();
    if n == 0 {
        return Err(PhaseError::TooFewIntervals { have: 0 });
    }
    let mut sigs = signatures.to_vec();
    normalize_columns(&mut sigs);
    let k = cfg.clusters.min(n);
    let (assignments, centroids) = kmeans(&sigs, k, cfg.seed, cfg.max_iters.max(1));
    let mut sizes = vec![0usize; k];
    for &a in &assignments {
        sizes[a] += 1;
    }
    let mut inertia = 0.0;
    for (&a, s) in assignments.iter().zip(&sigs) {
        inertia += squared_distance(s, &centroids[a]);
    }
    let mut representatives = Vec::new();
    for c in 0..k {
        if sizes[c] == 0 {
            continue;
        }
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, (&a, s)) in assignments.iter().zip(&sigs).enumerate() {
            if a == c {
                let d = squared_distance(s, &centroids[c]);
                if d < best_d {
                    best = Some(i);
                    best_d = d;
                }
            }
        }
        representatives.push(Representative {
            cluster: c,
            interval: best.expect("non-empty cluster has a member"),
            weight: sizes[c] as f64 / n as f64,
        });
    }
    Ok(PhaseClustering {
        assignments,
        centroids,
        sizes,
        inertia,
        representatives,
        intervals: n,
        interval: cfg.interval,
    })
}

/// Cluster a record stream: [`interval_signatures`] then
/// [`cluster_signatures`].
///
/// # Errors
///
/// Any [`PhaseError`].
pub fn cluster_records(
    records: &[Record],
    cfg: &PhaseConfig,
) -> Result<PhaseClustering, PhaseError> {
    let sigs = interval_signatures(records, cfg)?;
    cluster_signatures(&sigs, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two alternating synthetic phases: a quiet DC phase and a loud
    /// oscillating phase, four intervals each.
    fn two_phase_records(interval: usize) -> Vec<Record> {
        let mut out = Vec::new();
        for block in 0..8usize {
            let loud = block % 2 == 1;
            for i in 0..interval {
                let t = i as f64;
                let current = if loud {
                    40.0 + 20.0 * (t * 0.5).sin()
                } else {
                    20.0 + 0.1 * (t * 0.01).sin()
                };
                out.push(Record {
                    current,
                    power: current * 1.2,
                    committed: u16::from(loud) * 3 + 1,
                    l2_misses: 0,
                    mispredicts: 0,
                });
            }
        }
        out
    }

    fn cfg(interval: usize, clusters: usize) -> PhaseConfig {
        PhaseConfig {
            interval,
            clusters,
            levels: 3,
            ..PhaseConfig::default()
        }
    }

    #[test]
    fn separates_obvious_phases() {
        let records = two_phase_records(256);
        let clustering = cluster_records(&records, &cfg(256, 2)).unwrap();
        assert_eq!(clustering.intervals, 8);
        // Alternating blocks land in alternating clusters.
        let a = clustering.assignments[0];
        let b = clustering.assignments[1];
        assert_ne!(a, b);
        for (i, &c) in clustering.assignments.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { a } else { b });
        }
        // Representatives cover both phases with equal weight.
        assert_eq!(clustering.representatives.len(), 2);
        for r in &clustering.representatives {
            assert!((r.weight - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let records = two_phase_records(128);
        let a = cluster_records(&records, &cfg(128, 3)).unwrap();
        let b = cluster_records(&records, &cfg(128, 3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weights_sum_to_one() {
        let records = two_phase_records(128);
        let c = cluster_records(&records, &cfg(128, 4)).unwrap();
        let total: f64 = c.representatives.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(c.representative_cycles() <= 4 * 128);
    }

    #[test]
    fn weighted_estimate_recovers_exact_phase_mix() {
        let records = two_phase_records(256);
        let c = cluster_records(&records, &cfg(256, 2)).unwrap();
        // Estimate the mean current from the two representative slices.
        let est = c.weighted_estimate(|r| {
            let s = &records[r.interval * 256..(r.interval + 1) * 256];
            s.iter().map(|x| x.current).sum::<f64>() / 256.0
        });
        let truth = records.iter().map(|x| x.current).sum::<f64>() / records.len() as f64;
        assert!(
            (est - truth).abs() / truth < 0.05,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn clusters_clamped_to_interval_count() {
        let records = two_phase_records(512); // 4 intervals at 1024? no: 8*512/512 = 8
        let c = cluster_records(&records, &cfg(512, 64)).unwrap();
        assert!(c.centroids.len() <= 8);
        assert_eq!(c.assignments.len(), 8);
    }

    #[test]
    fn config_validation() {
        let records = two_phase_records(64);
        assert!(matches!(
            cluster_records(&records, &cfg(0, 2)),
            Err(PhaseError::InvalidConfig(_))
        ));
        assert!(matches!(
            cluster_records(&records, &cfg(100, 2)), // 100 % 8 != 0
            Err(PhaseError::InvalidConfig(_))
        ));
        assert!(matches!(
            cluster_records(&records, &cfg(64, 0)),
            Err(PhaseError::InvalidConfig(_))
        ));
        assert!(matches!(
            cluster_records(&records[..32], &cfg(64, 2)),
            Err(PhaseError::TooFewIntervals { have: 0 })
        ));
    }

    #[test]
    fn identical_intervals_cluster_into_one_effective_phase() {
        let interval = 128;
        let one: Vec<Record> = (0..interval)
            .map(|i| Record::current_only(30.0 + (f64::from(i) * 0.3).sin()))
            .collect();
        let mut records = Vec::new();
        for _ in 0..6 {
            records.extend_from_slice(&one);
        }
        let c = cluster_records(&records, &cfg(128, 3)).unwrap();
        // All intervals are identical: every point sits on a centroid.
        assert!(c.inertia < 1e-18);
        let total: f64 = c.representatives.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
