//! Recorded-trace container and phase clustering for dI/dt workloads.
//!
//! Every workload elsewhere in this workspace is a synthetic statistical
//! profile; this crate adds the *recorded* axis the paper's analyses were
//! built for — "a cycle by cycle current trace as measured or output by
//! an architectural simulator" (paper §2.1) — as a durable artifact:
//!
//! - [`format`](mod@format): the `.dtrc` container — a versioned, compressed,
//!   chunk-framed binary format for fixed-width per-cycle records, with a
//!   streaming [`TraceWriter`] and a zero-alloc-iteration
//!   [`TraceReader`]. The wire format is specified normatively in
//!   `TRACE_FORMAT.md` at the repository root; this module is one
//!   implementation of that contract, and the property-test suite in
//!   `crates/integration-tests/tests/trace_format.rs` holds it to the
//!   document with an independently written reference decoder.
//! - [`phase`]: SimPoint-style phase clustering. Long traces are cut
//!   into fixed-length intervals, each summarized by a signature vector
//!   (summary statistics plus per-scale Haar wavelet variances from
//!   `didt-dsp`), and clustered with a deterministic k-means. Each
//!   cluster elects a representative interval with a population weight,
//!   so a long workload is characterized from a handful of weighted
//!   slices instead of the full trace.
//!
//! Like the rest of the workspace the crate is offline-first: no
//! external dependencies, bit-exact round-trips, and fixed seeds
//! everywhere (`cluster` output is a pure function of its inputs).
//!
//! # Example
//!
//! ```
//! use didt_trace::{Record, RecordKind, TraceMeta, TraceReader, TraceWriter};
//!
//! # fn main() -> Result<(), didt_trace::TraceError> {
//! let meta = TraceMeta::new(RecordKind::Current, "synthetic");
//! let mut w = TraceWriter::with_chunk_records(Vec::new(), &meta, 4)?;
//! for i in 0..10 {
//!     w.push(Record::current_only(20.0 + f64::from(i)))?;
//! }
//! let bytes = w.finish()?;
//!
//! let mut r = TraceReader::new(&bytes[..])?;
//! let mut chunk = Vec::new();
//! let mut total = 0;
//! while r.next_chunk(&mut chunk)? {
//!     total += chunk.len();
//! }
//! assert_eq!(total, 10);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
#![allow(clippy::cast_sign_loss, clippy::must_use_candidate)]
#![allow(clippy::missing_panics_doc, clippy::module_name_repetitions)]

pub mod crc;
pub mod format;
pub mod phase;
pub mod record;

pub use crc::{crc32, Crc32};
pub use format::{
    read_all, read_path, write_path, TraceError, TraceMeta, TraceReader, TraceWriter,
    DEFAULT_CHUNK_RECORDS, MAGIC, MAX_CHUNK_RECORDS, READ_CHUNKS_COUNTER, REPLAY_CYCLES_COUNTER,
    VERSION,
};
pub use phase::{
    cluster_records, cluster_signatures, interval_signatures, PhaseClustering, PhaseConfig,
    PhaseError, Representative,
};
pub use record::{Record, RecordKind};
