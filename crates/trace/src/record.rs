//! The per-cycle logical record and its wire kinds (`TRACE_FORMAT.md` §3).

/// One per-cycle sample: supply current plus optional power and
/// architectural event counts.
///
/// The in-memory record is the same for both wire kinds; a kind-1
/// (`Current`) file decodes to records whose non-current fields are
/// zero. Per-cycle event counts fit comfortably in `u16` — a cycle
/// commits at most the pipeline width and resolves at most a handful of
/// misses — which is what keeps the logical record fixed-width.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Record {
    /// Current drawn this cycle (amperes).
    pub current: f64,
    /// Power drawn this cycle (watts).
    pub power: f64,
    /// Instructions committed this cycle.
    pub committed: u16,
    /// L2 misses completed this cycle.
    pub l2_misses: u16,
    /// Branch mispredicts resolved this cycle.
    pub mispredicts: u16,
}

impl Record {
    /// A kind-1 record: current only, every other field zero.
    #[must_use]
    pub fn current_only(current: f64) -> Self {
        Record {
            current,
            ..Record::default()
        }
    }

    /// Bit-exact equality: `f64` fields compare as IEEE-754 bit
    /// patterns (so NaNs compare equal to themselves and `0.0 != -0.0`),
    /// which is the round-trip contract the format guarantees.
    #[must_use]
    pub fn bits_eq(&self, other: &Record) -> bool {
        self.current.to_bits() == other.current.to_bits()
            && self.power.to_bits() == other.power.to_bits()
            && self.committed == other.committed
            && self.l2_misses == other.l2_misses
            && self.mispredicts == other.mispredicts
    }
}

/// Wire record kinds of `TRACE_FORMAT.md` §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// Kind 1: per-cycle current only (logical width 8 bytes).
    Current,
    /// Kind 2: current, power and per-cycle event counts (logical width
    /// 24 bytes including the reserved padding field).
    Full,
}

impl RecordKind {
    /// The on-wire kind id.
    #[must_use]
    pub fn to_wire(self) -> u16 {
        match self {
            RecordKind::Current => 1,
            RecordKind::Full => 2,
        }
    }

    /// Parse a wire kind id; `None` for unknown kinds (which readers
    /// must reject, never skip).
    #[must_use]
    pub fn from_wire(v: u16) -> Option<RecordKind> {
        match v {
            1 => Some(RecordKind::Current),
            2 => Some(RecordKind::Full),
            _ => None,
        }
    }

    /// Uncompressed logical record width in bytes (§3).
    #[must_use]
    pub fn logical_width(self) -> usize {
        match self {
            RecordKind::Current => 8,
            RecordKind::Full => 24,
        }
    }

    /// Number of `f64` fields a record of this kind stores on the wire
    /// (each costs one control byte in the worst case, §4).
    #[must_use]
    pub fn f64_fields(self) -> usize {
        match self {
            RecordKind::Current => 1,
            RecordKind::Full => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ids_round_trip() {
        for kind in [RecordKind::Current, RecordKind::Full] {
            assert_eq!(RecordKind::from_wire(kind.to_wire()), Some(kind));
        }
        assert_eq!(RecordKind::from_wire(0), None);
        assert_eq!(RecordKind::from_wire(3), None);
    }

    #[test]
    fn bits_eq_distinguishes_signed_zero_and_accepts_nan() {
        let nan = Record::current_only(f64::NAN);
        assert!(nan.bits_eq(&nan));
        let pos = Record::current_only(0.0);
        let neg = Record::current_only(-0.0);
        assert!(!pos.bits_eq(&neg));
        assert_eq!(pos, neg); // IEEE equality, unlike bits_eq
    }
}
