//! CRC-32/ISO-HDLC — the zlib/PNG checksum (`TRACE_FORMAT.md` §0).
//!
//! Reflected polynomial `0xEDB88320`, initial value `0xFFFFFFFF`, final
//! XOR `0xFFFFFFFF`, table-driven one byte at a time. Vendoring ~30
//! lines keeps the workspace's zero-external-deps rule intact.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32/ISO-HDLC state; feed bytes with [`Crc32::update`],
/// read the checksum with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s = TABLE[((s ^ u32::from(b)) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// The checksum of everything absorbed so far (the state is not
    /// consumed; more bytes may still be fed afterwards).
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The CRC-32/ISO-HDLC check value from the Rocksoft catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"wavelet dI/dt characterization";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }
}
