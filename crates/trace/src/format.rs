//! The `.dtrc` container: streaming writer and reader.
//!
//! This module implements `TRACE_FORMAT.md` (repository root) exactly;
//! where the two disagree the document wins. Layout summary:
//!
//! ```text
//! File      := Header DataChunk* EndChunk
//! DataChunk := record_count:u32 payload_len:u32 payload crc:u32
//! EndChunk  := 0:u32 8:u32 total_records:u64 crc:u32
//! ```
//!
//! Payloads are column-major; `f64` columns use XOR-delta varbyte
//! coding over the IEEE-754 bit patterns (lossless by construction),
//! `u16` columns are raw little-endian. Every frame is CRC-checked, and
//! all limits (chunk record cap, payload-length bound) are enforced
//! *before* the payload is read, so a hostile stream cannot make the
//! reader allocate unboundedly.
//!
//! [`TraceReader::next_chunk`] decodes into caller-supplied buffers:
//! iterating an arbitrarily long file allocates only up to the largest
//! chunk, which is what makes the reader usable as a streaming source
//! for replay.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use didt_telemetry::{Counter, MetricsRegistry};

use crate::crc::Crc32;
use crate::record::{Record, RecordKind};

/// File magic: ASCII `DTRC`.
pub const MAGIC: [u8; 4] = *b"DTRC";
/// Format version implemented by this module. Version bumps are
/// breaking: readers reject every other value.
pub const VERSION: u16 = 1;
/// Hard cap on records per data chunk (`TRACE_FORMAT.md` §4); bounds
/// reader allocation before any payload byte is read.
pub const MAX_CHUNK_RECORDS: u32 = 1_048_576;
/// Default records per chunk for writers that don't choose one.
pub const DEFAULT_CHUNK_RECORDS: usize = 16_384;
/// Global counter incremented once per accepted data chunk.
pub const READ_CHUNKS_COUNTER: &str = "trace.read_chunks";
/// Global counter incremented once per recorded cycle fed back into an
/// analysis or simulation (incremented by replay consumers, not here).
pub const REPLAY_CYCLES_COUNTER: &str = "trace.replay_cycles";

/// Header metadata of a `.dtrc` file (`TRACE_FORMAT.md` §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Record kind stored in the file.
    pub kind: RecordKind,
    /// Workload seed the trace was captured with (provenance).
    pub seed: u64,
    /// Cycles simulated and discarded before record 0 (provenance).
    pub discarded_warmup: u64,
    /// Leading records that are warm-in pre-roll: fed to stateful
    /// consumers but excluded from analysis (`TRACE_FORMAT.md` §6).
    pub pre_roll: u64,
    /// Source label (benchmark name); at most 255 bytes of UTF-8.
    pub name: String,
}

impl TraceMeta {
    /// Metadata with the given kind and name; seed, warmup and pre-roll
    /// default to zero (set the public fields directly as needed).
    #[must_use]
    pub fn new(kind: RecordKind, name: &str) -> Self {
        TraceMeta {
            kind,
            seed: 0,
            discarded_warmup: 0,
            pre_roll: 0,
            name: name.to_string(),
        }
    }
}

/// Everything that can go wrong reading or writing a `.dtrc` stream.
///
/// The reader variants are the taxonomy of `TRACE_FORMAT.md` §8; each
/// rejection path in the spec names the variant it maps to.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The first four bytes are not `DTRC`.
    BadMagic,
    /// A version other than [`VERSION`].
    UnsupportedVersion(u16),
    /// A record-kind id this implementation does not know.
    UnsupportedRecordKind(u16),
    /// The header name is not valid UTF-8.
    BadName,
    /// A CRC-32 check failed; `location` names the frame.
    CrcMismatch {
        /// Which frame failed: `"header"`, `"data chunk"`, `"end chunk"`.
        location: &'static str,
    },
    /// The stream ended before a complete end chunk was read.
    Truncated,
    /// A chunk announced more records than [`MAX_CHUNK_RECORDS`] or a
    /// payload longer than the §4 bound permits.
    ChunkTooLarge {
        /// Announced record count.
        records: u32,
        /// Announced payload length in bytes.
        payload_len: u32,
    },
    /// A CRC-valid payload that does not decode to exactly the
    /// announced record count (malformed varbyte stream, short or
    /// trailing bytes, end-chunk payload of the wrong size).
    CorruptPayload(&'static str),
    /// The end chunk's total does not match the records actually read.
    CountMismatch {
        /// Sum of data-chunk record counts actually decoded.
        expected: u64,
        /// Total declared by the end chunk.
        declared: u64,
    },
    /// The header's `pre_roll` exceeds the file's total record count.
    PreRollOutOfRange {
        /// Declared pre-roll.
        pre_roll: u64,
        /// Total records in the file.
        total: u64,
    },
    /// Bytes follow the end chunk (which is a positive end-of-stream
    /// marker, not a hint).
    TrailingData,
    /// Writer-side misuse: name too long, chunk size out of range, or a
    /// record carrying fields its kind cannot store.
    Unwritable(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a .dtrc stream (bad magic)"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::UnsupportedRecordKind(k) => write!(f, "unsupported record kind {k}"),
            TraceError::BadName => write!(f, "trace name is not valid UTF-8"),
            TraceError::CrcMismatch { location } => write!(f, "CRC mismatch in {location}"),
            TraceError::Truncated => write!(f, "trace stream truncated before its end chunk"),
            TraceError::ChunkTooLarge {
                records,
                payload_len,
            } => write!(
                f,
                "chunk exceeds limits ({records} records, {payload_len} payload bytes)"
            ),
            TraceError::CorruptPayload(what) => write!(f, "corrupt chunk payload: {what}"),
            TraceError::CountMismatch { expected, declared } => write!(
                f,
                "end chunk declares {declared} records but {expected} were read"
            ),
            TraceError::PreRollOutOfRange { pre_roll, total } => {
                write!(f, "pre_roll {pre_roll} exceeds the file's {total} records")
            }
            TraceError::TrailingData => write!(f, "bytes present after the end chunk"),
            TraceError::Unwritable(what) => write!(f, "cannot write trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// `read_exact` that reports a clean EOF mid-structure as
/// [`TraceError::Truncated`] instead of a bare I/O error.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8]) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    })
}

/// XOR-delta varbyte encoder for one `f64` column (`TRACE_FORMAT.md` §5).
fn encode_column_f64(out: &mut Vec<u8>, values: impl Iterator<Item = f64>) {
    let mut prev = 0u64;
    for v in values {
        let bits = v.to_bits();
        let x = bits ^ prev;
        let n = (64 - x.leading_zeros() as usize).div_ceil(8);
        out.push(n as u8);
        out.extend_from_slice(&x.to_le_bytes()[..n]);
        prev = bits;
    }
}

fn decode_column_f64(
    payload: &[u8],
    pos: &mut usize,
    out: &mut [Record],
    set: impl Fn(&mut Record, f64),
) -> Result<(), TraceError> {
    let mut prev = 0u64;
    for r in out.iter_mut() {
        let &ctl = payload.get(*pos).ok_or(TraceError::CorruptPayload(
            "payload ends inside an f64 column",
        ))?;
        *pos += 1;
        if ctl > 8 {
            return Err(TraceError::CorruptPayload("f64 control byte exceeds 8"));
        }
        let n = ctl as usize;
        let bytes = payload
            .get(*pos..*pos + n)
            .ok_or(TraceError::CorruptPayload(
                "payload ends inside an f64 delta",
            ))?;
        *pos += n;
        let mut x = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            x |= u64::from(b) << (8 * i);
        }
        prev ^= x;
        set(r, f64::from_bits(prev));
    }
    Ok(())
}

fn decode_column_u16(
    payload: &[u8],
    pos: &mut usize,
    out: &mut [Record],
    set: impl Fn(&mut Record, u16),
) -> Result<(), TraceError> {
    for r in out.iter_mut() {
        let bytes = payload
            .get(*pos..*pos + 2)
            .ok_or(TraceError::CorruptPayload(
                "payload ends inside a u16 column",
            ))?;
        *pos += 2;
        set(r, u16::from_le_bytes([bytes[0], bytes[1]]));
    }
    Ok(())
}

fn decode_chunk(
    kind: RecordKind,
    count: usize,
    payload: &[u8],
    out: &mut Vec<Record>,
) -> Result<(), TraceError> {
    out.clear();
    out.resize(count, Record::default());
    let mut pos = 0usize;
    decode_column_f64(payload, &mut pos, out, |r, v| r.current = v)?;
    if kind == RecordKind::Full {
        decode_column_f64(payload, &mut pos, out, |r, v| r.power = v)?;
        decode_column_u16(payload, &mut pos, out, |r, v| r.committed = v)?;
        decode_column_u16(payload, &mut pos, out, |r, v| r.l2_misses = v)?;
        decode_column_u16(payload, &mut pos, out, |r, v| r.mispredicts = v)?;
    }
    if pos != payload.len() {
        return Err(TraceError::CorruptPayload(
            "trailing bytes in chunk payload",
        ));
    }
    Ok(())
}

/// Streaming `.dtrc` writer over any [`Write`] sink.
///
/// Records are buffered and emitted as framed chunks of `chunk_records`
/// records; [`TraceWriter::finish`] flushes the final partial chunk and
/// writes the end chunk. Dropping a writer without `finish` leaves a
/// truncated stream, which every conforming reader rejects — there is
/// no way to produce a silently short file.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    kind: RecordKind,
    chunk_records: usize,
    buf: Vec<Record>,
    payload: Vec<u8>,
    total: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace with the default chunk size.
    ///
    /// # Errors
    ///
    /// [`TraceError::Unwritable`] for invalid metadata, or I/O errors
    /// writing the header.
    pub fn new(sink: W, meta: &TraceMeta) -> Result<Self, TraceError> {
        TraceWriter::with_chunk_records(sink, meta, DEFAULT_CHUNK_RECORDS)
    }

    /// Start a trace emitting chunks of `chunk_records` records.
    ///
    /// # Errors
    ///
    /// [`TraceError::Unwritable`] when the name exceeds 255 bytes or
    /// `chunk_records` is outside `1..=`[`MAX_CHUNK_RECORDS`]; I/O
    /// errors writing the header.
    pub fn with_chunk_records(
        mut sink: W,
        meta: &TraceMeta,
        chunk_records: usize,
    ) -> Result<Self, TraceError> {
        if meta.name.len() > 255 {
            return Err(TraceError::Unwritable("name longer than 255 bytes"));
        }
        if chunk_records == 0 || chunk_records > MAX_CHUNK_RECORDS as usize {
            return Err(TraceError::Unwritable("chunk size out of 1..=1048576"));
        }
        let mut header = Vec::with_capacity(37 + meta.name.len());
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&meta.kind.to_wire().to_le_bytes());
        header.extend_from_slice(&meta.seed.to_le_bytes());
        header.extend_from_slice(&meta.discarded_warmup.to_le_bytes());
        header.extend_from_slice(&meta.pre_roll.to_le_bytes());
        header.push(meta.name.len() as u8);
        header.extend_from_slice(meta.name.as_bytes());
        let crc = crate::crc::crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            kind: meta.kind,
            chunk_records,
            buf: Vec::with_capacity(chunk_records),
            payload: Vec::new(),
            total: 0,
        })
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// [`TraceError::Unwritable`] when a kind-1 (`Current`) trace is
    /// given a record with nonzero power/event fields — silently
    /// dropping them would break the bit-identical round-trip contract.
    /// I/O errors when a full chunk is flushed.
    pub fn push(&mut self, record: Record) -> Result<(), TraceError> {
        if self.kind == RecordKind::Current
            && (record.power.to_bits() != 0
                || record.committed != 0
                || record.l2_misses != 0
                || record.mispredicts != 0)
        {
            return Err(TraceError::Unwritable(
                "kind-1 (Current) trace cannot store power/event fields",
            ));
        }
        self.buf.push(record);
        self.total += 1;
        if self.buf.len() == self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Append a slice of records.
    ///
    /// # Errors
    ///
    /// As [`TraceWriter::push`].
    pub fn extend_from_slice(&mut self, records: &[Record]) -> Result<(), TraceError> {
        for &r in records {
            self.push(r)?;
        }
        Ok(())
    }

    /// Records pushed so far.
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.total
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.payload.clear();
        encode_column_f64(&mut self.payload, self.buf.iter().map(|r| r.current));
        if self.kind == RecordKind::Full {
            encode_column_f64(&mut self.payload, self.buf.iter().map(|r| r.power));
            for r in &self.buf {
                self.payload.extend_from_slice(&r.committed.to_le_bytes());
            }
            for r in &self.buf {
                self.payload.extend_from_slice(&r.l2_misses.to_le_bytes());
            }
            for r in &self.buf {
                self.payload.extend_from_slice(&r.mispredicts.to_le_bytes());
            }
        }
        let count = self.buf.len() as u32;
        let len = self.payload.len() as u32;
        let mut crc = Crc32::new();
        crc.update(&count.to_le_bytes());
        crc.update(&len.to_le_bytes());
        crc.update(&self.payload);
        self.sink.write_all(&count.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&self.payload)?;
        self.sink.write_all(&crc.finish().to_le_bytes())?;
        self.buf.clear();
        Ok(())
    }

    /// Flush the final partial chunk, write the end chunk, and return
    /// the sink.
    ///
    /// # Errors
    ///
    /// I/O errors writing or flushing.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.flush_chunk()?;
        let payload = self.total.to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&0u32.to_le_bytes());
        crc.update(&8u32.to_le_bytes());
        crc.update(&payload);
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.write_all(&8u32.to_le_bytes())?;
        self.sink.write_all(&payload)?;
        self.sink.write_all(&crc.finish().to_le_bytes())?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming `.dtrc` reader over any [`Read`] source.
///
/// The header is parsed and verified on construction; records are then
/// pulled one chunk at a time with [`TraceReader::next_chunk`] into a
/// caller-supplied buffer (zero allocation beyond buffer growth to the
/// largest chunk). Every accepted data chunk increments the global
/// [`READ_CHUNKS_COUNTER`].
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    meta: TraceMeta,
    payload: Vec<u8>,
    total_seen: u64,
    done: bool,
    read_chunks: Arc<Counter>,
}

impl<R: Read> TraceReader<R> {
    /// Parse and verify the header.
    ///
    /// # Errors
    ///
    /// Any header-stage variant of [`TraceError`]: bad magic, version,
    /// kind, name, CRC, or a stream too short to hold a header.
    pub fn new(mut source: R) -> Result<Self, TraceError> {
        let mut fixed = [0u8; 33];
        read_exact_or(&mut source, &mut fixed)?;
        if fixed[0..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes([fixed[4], fixed[5]]);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let kind_wire = u16::from_le_bytes([fixed[6], fixed[7]]);
        let kind =
            RecordKind::from_wire(kind_wire).ok_or(TraceError::UnsupportedRecordKind(kind_wire))?;
        let mut word = [0u8; 8];
        word.copy_from_slice(&fixed[8..16]);
        let seed = u64::from_le_bytes(word);
        word.copy_from_slice(&fixed[16..24]);
        let discarded_warmup = u64::from_le_bytes(word);
        word.copy_from_slice(&fixed[24..32]);
        let pre_roll = u64::from_le_bytes(word);
        let name_len = fixed[32] as usize;
        let mut name_bytes = vec![0u8; name_len];
        read_exact_or(&mut source, &mut name_bytes)?;
        let mut crc_bytes = [0u8; 4];
        read_exact_or(&mut source, &mut crc_bytes)?;
        let mut crc = Crc32::new();
        crc.update(&fixed);
        crc.update(&name_bytes);
        if crc.finish() != u32::from_le_bytes(crc_bytes) {
            return Err(TraceError::CrcMismatch { location: "header" });
        }
        let name = String::from_utf8(name_bytes).map_err(|_| TraceError::BadName)?;
        Ok(TraceReader {
            source,
            meta: TraceMeta {
                kind,
                seed,
                discarded_warmup,
                pre_roll,
                name,
            },
            payload: Vec::new(),
            total_seen: 0,
            done: false,
            read_chunks: MetricsRegistry::global().counter(READ_CHUNKS_COUNTER),
        })
    }

    /// Header metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records decoded so far.
    #[must_use]
    pub fn records_read(&self) -> u64 {
        self.total_seen
    }

    /// Decode the next data chunk into `out` (cleared first).
    ///
    /// Returns `Ok(true)` when `out` holds a chunk's records, and
    /// `Ok(false)` once the end chunk has been consumed and the stream
    /// verified complete (count matches, pre-roll in range, no trailing
    /// bytes). After `Ok(false)` further calls keep returning
    /// `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Any reader variant of [`TraceError`]; after an error the reader
    /// is poisoned in the sense that continuing is unspecified (callers
    /// should stop).
    pub fn next_chunk(&mut self, out: &mut Vec<Record>) -> Result<bool, TraceError> {
        out.clear();
        if self.done {
            return Ok(false);
        }
        let mut prefix = [0u8; 8];
        read_exact_or(&mut self.source, &mut prefix)?;
        let count = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]);
        let payload_len = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]);
        if count == 0 {
            // End chunk: payload is exactly total_records:u64.
            if payload_len != 8 {
                return Err(TraceError::CorruptPayload(
                    "end chunk payload must be 8 bytes",
                ));
            }
            let mut payload = [0u8; 8];
            read_exact_or(&mut self.source, &mut payload)?;
            let mut crc_bytes = [0u8; 4];
            read_exact_or(&mut self.source, &mut crc_bytes)?;
            let mut crc = Crc32::new();
            crc.update(&prefix);
            crc.update(&payload);
            if crc.finish() != u32::from_le_bytes(crc_bytes) {
                return Err(TraceError::CrcMismatch {
                    location: "end chunk",
                });
            }
            let declared = u64::from_le_bytes(payload);
            if declared != self.total_seen {
                return Err(TraceError::CountMismatch {
                    expected: self.total_seen,
                    declared,
                });
            }
            if self.meta.pre_roll > declared {
                return Err(TraceError::PreRollOutOfRange {
                    pre_roll: self.meta.pre_roll,
                    total: declared,
                });
            }
            // The end chunk is a positive end-of-stream marker: any
            // further byte is corruption, not a second stream.
            let mut probe = [0u8; 1];
            loop {
                match self.source.read(&mut probe) {
                    Ok(0) => break,
                    Ok(_) => return Err(TraceError::TrailingData),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(TraceError::Io(e)),
                }
            }
            self.done = true;
            return Ok(false);
        }
        if count > MAX_CHUNK_RECORDS {
            return Err(TraceError::ChunkTooLarge {
                records: count,
                payload_len,
            });
        }
        let bound = u64::from(count)
            * (self.meta.kind.logical_width() as u64 + self.meta.kind.f64_fields() as u64);
        if u64::from(payload_len) > bound {
            return Err(TraceError::ChunkTooLarge {
                records: count,
                payload_len,
            });
        }
        self.payload.clear();
        self.payload.resize(payload_len as usize, 0);
        read_exact_or(&mut self.source, &mut self.payload)?;
        let mut crc_bytes = [0u8; 4];
        read_exact_or(&mut self.source, &mut crc_bytes)?;
        let mut crc = Crc32::new();
        crc.update(&prefix);
        crc.update(&self.payload);
        if crc.finish() != u32::from_le_bytes(crc_bytes) {
            return Err(TraceError::CrcMismatch {
                location: "data chunk",
            });
        }
        decode_chunk(self.meta.kind, count as usize, &self.payload, out)?;
        self.total_seen += u64::from(count);
        self.read_chunks.incr();
        Ok(true)
    }
}

/// Read an entire stream into memory.
///
/// # Errors
///
/// Any reader variant of [`TraceError`].
pub fn read_all<R: Read>(source: R) -> Result<(TraceMeta, Vec<Record>), TraceError> {
    let mut reader = TraceReader::new(source)?;
    let mut records = Vec::new();
    let mut chunk = Vec::new();
    while reader.next_chunk(&mut chunk)? {
        records.extend_from_slice(&chunk);
    }
    Ok((reader.meta.clone(), records))
}

/// Read a `.dtrc` file from disk (buffered).
///
/// # Errors
///
/// Any reader variant of [`TraceError`]; `Io` when the file cannot be
/// opened.
pub fn read_path(path: &Path) -> Result<(TraceMeta, Vec<Record>), TraceError> {
    let file = std::fs::File::open(path)?;
    read_all(io::BufReader::new(file))
}

/// Write `records` to a `.dtrc` file on disk (buffered, default chunk
/// size), creating parent directories.
///
/// # Errors
///
/// Any writer variant of [`TraceError`].
pub fn write_path(path: &Path, meta: &TraceMeta, records: &[Record]) -> Result<(), TraceError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = std::fs::File::create(path)?;
    let mut writer = TraceWriter::new(io::BufWriter::new(file), meta)?;
    writer.extend_from_slice(records)?;
    writer.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_record(i: u64) -> Record {
        Record {
            current: 20.0 + (i as f64) * 0.25,
            power: 30.0 + (i as f64).sin(),
            committed: (i % 9) as u16,
            l2_misses: (i % 3) as u16,
            mispredicts: (i % 2) as u16,
        }
    }

    fn write_to_vec(meta: &TraceMeta, records: &[Record], chunk: usize) -> Vec<u8> {
        let mut w = TraceWriter::with_chunk_records(Vec::new(), meta, chunk).unwrap();
        w.extend_from_slice(records).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_full_records() {
        let mut meta = TraceMeta::new(RecordKind::Full, "gzip");
        meta.seed = 0xD1D7;
        meta.discarded_warmup = 1000;
        meta.pre_roll = 3;
        let records: Vec<Record> = (0..1000).map(full_record).collect();
        let bytes = write_to_vec(&meta, &records, 64);
        let (got_meta, got) = read_all(&bytes[..]).unwrap();
        assert_eq!(got_meta, meta);
        assert_eq!(got.len(), records.len());
        assert!(got.iter().zip(&records).all(|(a, b)| a.bits_eq(b)));
    }

    #[test]
    fn chunk_size_is_invisible() {
        let meta = TraceMeta::new(RecordKind::Current, "swim");
        let records: Vec<Record> = (0..257)
            .map(|i| Record::current_only(40.0 + f64::from(i) * 0.01))
            .collect();
        let reference = read_all(&write_to_vec(&meta, &records, 257)[..]).unwrap();
        for chunk in [1usize, 2, 7, 64, 256, 1024] {
            let got = read_all(&write_to_vec(&meta, &records, chunk)[..]).unwrap();
            assert_eq!(got.0, reference.0);
            assert_eq!(got.1.len(), reference.1.len());
            assert!(got.1.iter().zip(&reference.1).all(|(a, b)| a.bits_eq(b)));
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let meta = TraceMeta::new(RecordKind::Current, "");
        let bytes = write_to_vec(&meta, &[], 8);
        let (_, got) = read_all(&bytes[..]).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn special_float_bit_patterns_round_trip() {
        let meta = TraceMeta::new(RecordKind::Current, "specials");
        let specials = [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7FF8_0000_DEAD_BEEF), // NaN payload
            f64::MIN_POSITIVE,
            f64::from_bits(1), // smallest subnormal
            f64::MAX,
        ];
        let records: Vec<Record> = specials.iter().map(|&v| Record::current_only(v)).collect();
        let bytes = write_to_vec(&meta, &records, 3);
        let (_, got) = read_all(&bytes[..]).unwrap();
        assert!(got.iter().zip(&records).all(|(a, b)| a.bits_eq(b)));
    }

    #[test]
    fn repeated_values_cost_one_byte() {
        let meta = TraceMeta::new(RecordKind::Current, "flat");
        let records = vec![Record::current_only(42.5); 1000];
        let bytes = write_to_vec(&meta, &records, 1000);
        // header + chunk framing + ~9 bytes first record + 1 byte each after.
        assert!(bytes.len() < 1100, "flat trace is {} bytes", bytes.len());
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let meta = TraceMeta::new(RecordKind::Full, "trunc");
        let records: Vec<Record> = (0..50).map(full_record).collect();
        let bytes = write_to_vec(&meta, &records, 16);
        for cut in 0..bytes.len() {
            assert!(
                read_all(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn single_byte_corruption_is_rejected() {
        let meta = TraceMeta::new(RecordKind::Full, "corrupt");
        let records: Vec<Record> = (0..50).map(full_record).collect();
        let bytes = write_to_vec(&meta, &records, 16);
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x41;
            assert!(
                read_all(&bad[..]).is_err(),
                "flip at byte {pos} was accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let meta = TraceMeta::new(RecordKind::Current, "t");
        let mut bytes = write_to_vec(&meta, &[Record::current_only(1.0)], 8);
        bytes.push(0);
        assert!(matches!(
            read_all(&bytes[..]),
            Err(TraceError::TrailingData)
        ));
    }

    #[test]
    fn wrong_magic_version_and_kind_are_rejected() {
        let meta = TraceMeta::new(RecordKind::Current, "x");
        let good = write_to_vec(&meta, &[], 8);
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(read_all(&bad[..]), Err(TraceError::BadMagic)));
        // Version / kind flips also break the header CRC, so patch the
        // CRC too to prove the dedicated checks fire first.
        let patch = |mut v: Vec<u8>, off: usize, val: u8| {
            v[off] = val;
            let name_end = 33 + v[32] as usize;
            let crc = crate::crc::crc32(&v[..name_end]);
            v[name_end..name_end + 4].copy_from_slice(&crc.to_le_bytes());
            v
        };
        assert!(matches!(
            read_all(&patch(good.clone(), 4, 9)[..]),
            Err(TraceError::UnsupportedVersion(9))
        ));
        assert!(matches!(
            read_all(&patch(good, 6, 7)[..]),
            Err(TraceError::UnsupportedRecordKind(7))
        ));
    }

    #[test]
    fn end_chunk_count_mismatch_is_rejected() {
        let meta = TraceMeta::new(RecordKind::Current, "n");
        let records: Vec<Record> = (0..10)
            .map(|i| Record::current_only(f64::from(i)))
            .collect();
        let mut bytes = write_to_vec(&meta, &records, 4);
        // Rewrite the end-chunk total (last 12 bytes: u64 payload + crc)
        // with a consistent CRC so only the count check can fire.
        let end = bytes.len() - 20; // prefix(8) + payload(8) + crc(4)
        bytes[end + 8..end + 16].copy_from_slice(&11u64.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&bytes[end..end + 16]);
        let c = crc.finish();
        bytes[end + 16..end + 20].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(
            read_all(&bytes[..]),
            Err(TraceError::CountMismatch {
                expected: 10,
                declared: 11
            })
        ));
    }

    #[test]
    fn pre_roll_beyond_total_is_rejected() {
        let mut meta = TraceMeta::new(RecordKind::Current, "p");
        meta.pre_roll = 11;
        let records: Vec<Record> = (0..10)
            .map(|i| Record::current_only(f64::from(i)))
            .collect();
        let bytes = write_to_vec(&meta, &records, 4);
        assert!(matches!(
            read_all(&bytes[..]),
            Err(TraceError::PreRollOutOfRange {
                pre_roll: 11,
                total: 10
            })
        ));
    }

    #[test]
    fn kind1_writer_rejects_event_fields() {
        let meta = TraceMeta::new(RecordKind::Current, "k1");
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        let mut r = Record::current_only(1.0);
        r.committed = 1;
        assert!(matches!(w.push(r), Err(TraceError::Unwritable(_))));
    }

    #[test]
    fn oversized_name_and_chunk_are_unwritable() {
        let meta = TraceMeta::new(RecordKind::Current, &"x".repeat(256));
        assert!(matches!(
            TraceWriter::new(Vec::new(), &meta),
            Err(TraceError::Unwritable(_))
        ));
        let meta = TraceMeta::new(RecordKind::Current, "ok");
        assert!(matches!(
            TraceWriter::with_chunk_records(Vec::new(), &meta, 0),
            Err(TraceError::Unwritable(_))
        ));
        assert!(matches!(
            TraceWriter::with_chunk_records(Vec::new(), &meta, MAX_CHUNK_RECORDS as usize + 1),
            Err(TraceError::Unwritable(_))
        ));
    }

    #[test]
    fn compression_beats_raw_width_on_smooth_traces() {
        let meta = TraceMeta::new(RecordKind::Full, "smooth");
        // A smooth-ish current: small steps around a mean, like the
        // simulator's output. XOR deltas should shave the high bytes.
        let records: Vec<Record> = (0..4096)
            .map(|i| {
                let t = f64::from(i);
                Record {
                    current: (40.0 + 8.0 * (t * 0.01).sin()).round() * 0.125,
                    power: (55.0 + 5.0 * (t * 0.02).cos()).round() * 0.25,
                    committed: 4,
                    l2_misses: 0,
                    mispredicts: 0,
                }
            })
            .collect();
        let bytes = write_to_vec(&meta, &records, 4096);
        let raw = records.len() * RecordKind::Full.logical_width();
        assert!(bytes.len() < raw, "compressed {} >= raw {raw}", bytes.len());
    }

    #[test]
    fn read_chunks_counter_advances() {
        let before = MetricsRegistry::global().counter(READ_CHUNKS_COUNTER).get();
        let meta = TraceMeta::new(RecordKind::Current, "ctr");
        let records: Vec<Record> = (0..100)
            .map(|i| Record::current_only(f64::from(i)))
            .collect();
        let bytes = write_to_vec(&meta, &records, 10);
        read_all(&bytes[..]).unwrap();
        let after = MetricsRegistry::global().counter(READ_CHUNKS_COUNTER).get();
        assert!(after >= before + 10);
    }

    #[test]
    fn write_and_read_path_round_trip() {
        let dir = std::env::temp_dir().join("didt_trace_fmt_test");
        let path = dir.join("roundtrip.dtrc");
        let mut meta = TraceMeta::new(RecordKind::Full, "mcf");
        meta.seed = 7;
        let records: Vec<Record> = (0..500).map(full_record).collect();
        write_path(&path, &meta, &records).unwrap();
        let (got_meta, got) = read_path(&path).unwrap();
        assert_eq!(got_meta, meta);
        assert!(got.iter().zip(&records).all(|(a, b)| a.bits_eq(b)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
