//! Property-based tests of the statistical primitives.

use didt_stats::chi_squared::{ChiSquared, ChiSquaredGof};
use didt_stats::normal::{erf, erfc};
use didt_stats::{autocorrelation, mean, pearson, variance, Histogram, Normal, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn erf_is_odd_bounded_monotone(x in -5.0..5.0f64, dx in 0.001..1.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&erf(x)));
        prop_assert!(erf(x + dx) >= erf(x));
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_properties(mean_v in -10.0..10.0f64, sd in 0.01..10.0f64, x in -50.0..50.0f64) {
        let n = Normal::new(mean_v, sd).expect("normal");
        let c = n.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-9);
        // Symmetry about the mean.
        let lo = n.cdf(mean_v - (x - mean_v));
        prop_assert!((c + lo - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_inverts(mean_v in -5.0..5.0f64, sd in 0.1..5.0f64, p in 0.001..0.999f64) {
        let n = Normal::new(mean_v, sd).expect("normal");
        let x = n.quantile(p).expect("quantile");
        prop_assert!((n.cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn chi_squared_cdf_monotone(dof in 1.0..30.0f64, x in 0.0..100.0f64, dx in 0.01..10.0f64) {
        let chi = ChiSquared::new(dof).expect("chi");
        prop_assert!(chi.cdf(x + dx) >= chi.cdf(x));
        prop_assert!((0.0..=1.0).contains(&chi.cdf(x)));
    }

    #[test]
    fn variance_shift_invariant_scale_quadratic(
        data in prop::collection::vec(-100.0..100.0f64, 2..64),
        shift in -50.0..50.0f64,
        scale in -4.0..4.0f64,
    ) {
        let v = variance(&data);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        prop_assert!((variance(&shifted) - v).abs() < 1e-7 * v.max(1.0) + 1e-7);
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        prop_assert!((variance(&scaled) - scale * scale * v).abs() < 1e-6 * (v + 1.0));
    }

    #[test]
    fn summary_matches_batch_functions(data in prop::collection::vec(-100.0..100.0f64, 1..128)) {
        let s = Summary::from_slice(&data);
        prop_assert!((s.mean - mean(&data)).abs() < 1e-9);
        prop_assert!((s.variance - variance(&data)).abs() < 1e-7);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn correlations_bounded(
        x in prop::collection::vec(-10.0..10.0f64, 4..64),
        lag in 0usize..3,
    ) {
        let r = autocorrelation(&x, lag).expect("autocorr");
        prop_assert!((-1.0..=1.0).contains(&r));
        let y: Vec<f64> = x.iter().rev().copied().collect();
        let p = pearson(&x, &y).expect("pearson");
        prop_assert!((-1.0..=1.0).contains(&p));
        // Self-correlation is 1 unless degenerate.
        if variance(&x) > 1e-12 {
            prop_assert!((pearson(&x, &x).expect("pearson") - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_conserves_counts(
        xs in prop::collection::vec(-2.0..2.0f64, 0..200),
        bins in 1usize..20,
    ) {
        let mut h = Histogram::new(-1.0, 1.0, bins).expect("histogram");
        h.record_all(&xs);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned, xs.len() as u64);
        // fraction_below is monotone in the threshold.
        let f_lo = h.fraction_below(-0.5);
        let f_mid = h.fraction_below(0.0);
        let f_hi = h.fraction_below(0.5);
        prop_assert!(f_lo <= f_mid && f_mid <= f_hi);
    }

    #[test]
    fn gof_never_accepts_two_point_masses(n in 16usize..64) {
        // Deterministic bimodal data must never classify Gaussian.
        let mut data = Vec::new();
        for i in 0..n {
            data.push(if i % 2 == 0 { 0.0 } else { 10.0 });
            data.push(if i % 3 == 0 { 0.1 } else { 9.9 });
        }
        let test = ChiSquaredGof::new(4).expect("test");
        if let Ok(r) = test.test_normality(&data, 0.95) {
            prop_assert!(!r.is_gaussian(), "bimodal data accepted");
        }
    }
}
