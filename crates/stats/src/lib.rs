#![warn(missing_docs)]
//! Statistical primitives for dI/dt characterization.
//!
//! This crate provides the statistics used by the wavelet-based dI/dt
//! methodology of Joseph, Hu and Martonosi (HPCA 2004):
//!
//! * [`descriptive`] — means, variances, RMS error and trace summaries.
//! * [`normal`] — the Gaussian distribution (`erf`-based CDF, quantiles).
//! * [`gamma`] — log-gamma and the regularized incomplete gamma function,
//!   the machinery behind the chi-squared distribution.
//! * [`chi_squared`] — the chi-squared distribution and the
//!   goodness-of-fit test used to classify execution windows as Gaussian
//!   (paper §4.1, Figures 6 and 12).
//! * [`correlation`] — Pearson and lag-k autocorrelation, used to detect
//!   resonant pulse patterns in adjacent wavelet detail coefficients
//!   (paper §4.1, step 3).
//! * [`histogram`] — fixed-bin histograms (paper Figures 10 and 11).
//!
//! # Examples
//!
//! Classify a sample as Gaussian with a 95 % chi-squared test:
//!
//! ```
//! use didt_stats::chi_squared::{ChiSquaredGof, GofOutcome};
//!
//! # fn main() -> Result<(), didt_stats::StatsError> {
//! // A clearly uniform ramp is *not* Gaussian...
//! let ramp: Vec<f64> = (0..256).map(|i| i as f64).collect();
//! let test = ChiSquaredGof::new(8)?;
//! let outcome = test.test_normality(&ramp, 0.95)?;
//! assert_eq!(outcome.decision, GofOutcome::Rejected);
//! # Ok(())
//! # }
//! ```

pub mod chi_squared;
pub mod correlation;
pub mod descriptive;
pub mod gamma;
pub mod histogram;
pub mod lilliefors;
pub mod moments;
pub mod normal;

mod error;

pub use chi_squared::{ChiSquared, ChiSquaredGof, GofOutcome, GofReport};
pub use correlation::{autocorrelation, lag_correlation, pearson};
pub use descriptive::{max, mean, min, rms_error, sample_variance, std_dev, variance, Summary};
pub use error::StatsError;
pub use histogram::Histogram;
pub use lilliefors::LillieforsTest;
pub use moments::{excess_kurtosis, jarque_bera, skewness};
pub use normal::Normal;
