//! Fixed-bin histograms.
//!
//! Figures 10 and 11 of the paper show per-benchmark histograms of cycles
//! spent at different supply-voltage levels (x-axis 0.90–1.05 V). This
//! histogram type reproduces those plots as data rows.

use crate::StatsError;

/// A histogram over a fixed range with uniform bins.
///
/// Out-of-range samples are counted in saturating edge bins and also
/// tracked separately so callers can detect clipping.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// use didt_stats::Histogram;
///
/// let mut h = Histogram::new(0.90, 1.05, 30)?;
/// for v in [0.99, 1.0, 1.0, 1.01] {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 4);
/// let frac = h.fraction_below(0.97);
/// assert_eq!(frac, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram spanning `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `hi <= lo`, the
    /// bounds are not finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "range",
                value: hi - lo,
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() {
            // NaNs are counted as underflow — they should never occur in
            // voltage traces, and tests assert underflow stays zero.
            self.underflow += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
            self.counts[0] += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            let last = self.counts.len() - 1;
            self.counts[last] += 1;
            return;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Record every sample in a slice.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total samples recorded (including out-of-range).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that fell below the range (plus NaNs).
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above the top of the range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.bins()`.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of all recorded samples in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.bins()`.
    #[must_use]
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / self.total as f64
    }

    /// Fraction of samples strictly below `threshold`.
    ///
    /// Bins straddling the threshold contribute proportionally; exact for
    /// thresholds on bin edges. The paper's Figure 9 metric — percent of
    /// cycles below the 0.97 V control point — is computed this way on
    /// voltage traces.
    #[must_use]
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut below = self.underflow as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let lo_i = self.lo + i as f64 * w;
            let hi_i = lo_i + w;
            if hi_i <= threshold {
                below += c as f64;
            } else if lo_i < threshold {
                below += c as f64 * (threshold - lo_i) / w;
            }
        }
        // Underflow samples were already placed in counts[0]; avoid double
        // counting by subtracting them if bin 0 is below the threshold.
        if threshold > self.lo {
            below -= self.underflow as f64;
        }
        (below / self.total as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_ranges() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.5);
        h.record(9.5);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-5.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_exact_on_edges() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        for i in 0..10 {
            h.record(i as f64 / 10.0 + 0.05);
        }
        assert!((h.fraction_below(0.5) - 0.5).abs() < 1e-12);
        assert!((h.fraction_below(0.0) - 0.0).abs() < 1e-12);
        assert!((h.fraction_below(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_counts_underflow_once() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-1.0); // underflow, saturates into bin 0
        h.record(0.9);
        let f = h.fraction_below(0.5);
        assert!((f - 0.5).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn fractions_sum_to_one_in_range() {
        let mut h = Histogram::new(0.0, 1.0, 8).unwrap();
        for i in 0..100 {
            h.record((i as f64 + 0.5) / 100.0);
        }
        let s: f64 = (0..8).map(|i| h.fraction(i)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert_eq!(h.fraction(0), 0.0);
        assert_eq!(h.fraction_below(0.5), 0.0);
    }

    #[test]
    fn record_all_matches_record() {
        let xs = [0.1, 0.2, 0.3, 0.9];
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let mut b = a.clone();
        a.record_all(&xs);
        for &x in &xs {
            b.record(x);
        }
        assert_eq!(a, b);
    }
}
