//! Lilliefors (Kolmogorov–Smirnov with estimated parameters) normality
//! test — an alternative to the paper's chi-squared classifier, used in
//! the classifier-choice ablation.
//!
//! The KS statistic `D = sup |F_emp(x) − Φ((x−μ̂)/σ̂)|` is compared
//! against Lilliefors critical values (which account for fitting μ and σ
//! from the sample; plain KS critical values would be far too lenient).

use crate::chi_squared::{GofOutcome, GofReport};
use crate::normal::Normal;
use crate::{mean, variance, StatsError};

/// Lilliefors normality test.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// use didt_stats::chi_squared::GofOutcome;
/// use didt_stats::lilliefors::LillieforsTest;
///
/// let ramp: Vec<f64> = (0..256).map(|i| i as f64).collect();
/// let r = LillieforsTest.test_normality(&ramp, 0.95)?;
/// assert_eq!(r.decision, GofOutcome::Rejected);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LillieforsTest;

impl LillieforsTest {
    /// Minimum sample size for the asymptotic critical values.
    pub const MIN_SAMPLES: usize = 8;

    /// Asymptotic Lilliefors critical constant `c(α)` such that
    /// `D_crit = c / (√n − 0.01 + 0.85/√n)` (Abdi & Molin's
    /// approximation of Lilliefors' tables).
    fn critical_constant(significance: f64) -> Option<f64> {
        // significance = confidence level (0.95 → α = 0.05).
        if (significance - 0.90).abs() < 1e-9 {
            Some(0.819)
        } else if (significance - 0.95).abs() < 1e-9 {
            Some(0.895)
        } else if (significance - 0.99).abs() < 1e-9 {
            Some(1.035)
        } else {
            None
        }
    }

    /// Test whether `data` is consistent with a normal distribution with
    /// fitted mean/variance at the given confidence level (0.90, 0.95 or
    /// 0.99 — the tabulated Lilliefors levels).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for samples below
    /// [`Self::MIN_SAMPLES`] and [`StatsError::InvalidParameter`] for an
    /// untabulated significance level.
    pub fn test_normality(&self, data: &[f64], significance: f64) -> Result<GofReport, StatsError> {
        let c = Self::critical_constant(significance).ok_or(StatsError::InvalidParameter {
            name: "significance",
            value: significance,
        })?;
        if data.len() < Self::MIN_SAMPLES {
            return Err(StatsError::InsufficientData {
                needed: Self::MIN_SAMPLES,
                got: data.len(),
            });
        }
        let n = data.len() as f64;
        let critical_value = c / (n.sqrt() - 0.01 + 0.85 / n.sqrt());

        let m = mean(data);
        let var = variance(data);
        if var < 1e-12 {
            return Ok(GofReport {
                decision: GofOutcome::Degenerate,
                statistic: 0.0,
                critical_value,
                dof: 0,
                p_value: 1.0,
            });
        }
        let fitted = Normal::new(m, var.sqrt())?;
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        // D = max over points of |F_emp − F_fit| using both one-sided
        // empirical CDF conventions.
        let mut d = 0.0f64;
        for (i, &x) in sorted.iter().enumerate() {
            let f = fitted.cdf(x);
            let hi = (i + 1) as f64 / n - f;
            let lo = f - i as f64 / n;
            d = d.max(hi).max(lo);
        }
        let decision = if d <= critical_value {
            GofOutcome::Accepted
        } else {
            GofOutcome::Rejected
        };
        // Approximate p-value from the plain-KS asymptotic distribution
        // with Lilliefors' effective sample scaling (informational only;
        // the decision uses the tabulated critical value).
        let lambda = d * (n.sqrt() - 0.01 + 0.85 / n.sqrt()) / 0.895 * 1.358;
        let p_value = kolmogorov_sf(lambda).clamp(0.0, 1.0);
        Ok(GofReport {
            decision,
            statistic: d,
            critical_value,
            dof: 0,
            p_value,
        })
    }
}

/// Kolmogorov distribution survival function `Q(λ) = 2Σ(−1)^{k−1}e^{−2k²λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clt_gaussian(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn accepts_gaussian_sample() {
        let data = clt_gaussian(512, 0xFEED);
        let r = LillieforsTest.test_normality(&data, 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Accepted, "D = {}", r.statistic);
    }

    #[test]
    fn rejects_uniform_ramp() {
        let data: Vec<f64> = (0..512).map(|i| i as f64).collect();
        let r = LillieforsTest.test_normality(&data, 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Rejected);
        assert!(r.statistic > r.critical_value);
    }

    #[test]
    fn rejects_bimodal() {
        let mut data = vec![0.0; 128];
        data.extend(vec![10.0; 128]);
        for (i, x) in data.iter_mut().enumerate() {
            *x += (i % 5) as f64 * 1e-3;
        }
        let r = LillieforsTest.test_normality(&data, 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Rejected);
    }

    #[test]
    fn degenerate_on_flat_data() {
        let r = LillieforsTest.test_normality(&[3.0; 64], 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Degenerate);
    }

    #[test]
    fn rejects_untabulated_significance_and_short_samples() {
        assert!(LillieforsTest.test_normality(&[0.0; 64], 0.93).is_err());
        assert!(LillieforsTest.test_normality(&[0.0; 4], 0.95).is_err());
    }

    #[test]
    fn stricter_significance_has_larger_critical_value() {
        let data = clt_gaussian(128, 7);
        let r90 = LillieforsTest.test_normality(&data, 0.90).unwrap();
        let r99 = LillieforsTest.test_normality(&data, 0.99).unwrap();
        assert!(r99.critical_value > r90.critical_value);
    }

    #[test]
    fn kolmogorov_sf_boundaries() {
        assert!((kolmogorov_sf(0.0) - 1.0).abs() < 1e-12);
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Known value: Q(1.358) ≈ 0.05.
        assert!((kolmogorov_sf(1.358) - 0.05).abs() < 0.005);
    }
}
