//! Log-gamma and regularized incomplete gamma functions.
//!
//! These power the chi-squared distribution CDF: for `k` degrees of
//! freedom, `P(X <= x) = P(k/2, x/2)` where `P` is the regularized lower
//! incomplete gamma function. Implementations follow the classic
//! series/continued-fraction split (Numerical Recipes style) with a
//! Lanczos approximation for `ln Γ`.

use crate::StatsError;

/// Lanczos coefficients (g = 7, n = 9), good to ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
///
/// Panics in debug builds when `x <= 0`; release builds return NaN.
///
/// # Examples
///
/// ```
/// // Γ(5) = 24
/// let lg = didt_stats::gamma::ln_gamma(5.0);
/// assert!((lg - 24.0f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)` with `P(a, 0) = 0` and `P(a, ∞) = 1`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `a <= 0` or `x < 0`, and
/// [`StatsError::NoConvergence`] if the internal iteration fails (which
/// does not occur for reasonable inputs).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// // For a = 1, P(1, x) = 1 - exp(-x).
/// let p = didt_stats::gamma::gamma_p(1.0, 2.0)?;
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn gamma_p(a: f64, x: f64) -> Result<f64, StatsError> {
    if a <= 0.0 || !a.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
        });
    }
    if x < 0.0 || !x.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Errors
///
/// Same conditions as [`gamma_p`].
pub fn gamma_q(a: f64, x: f64) -> Result<f64, StatsError> {
    Ok(1.0 - gamma_p(a, x)?)
}

/// Series expansion of P(a, x), converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> Result<f64, StatsError> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            let ln_pre = -x + a * x.ln() - ln_gamma(a);
            return Ok(sum * ln_pre.exp());
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_p_series",
    })
}

/// Continued fraction for Q(a, x), converges fast for x >= a + 1
/// (modified Lentz algorithm).
fn gamma_q_cf(a: f64, x: f64) -> Result<f64, StatsError> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            let ln_pre = -x + a * x.ln() - ln_gamma(a);
            return Ok(ln_pre.exp() * h);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_q_cf",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "Γ({}) mismatch", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let lg = ln_gamma(0.5);
        assert!((lg - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert!((gamma_p(2.0, 1e6).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let p = gamma_p(1.0, x).unwrap();
            assert!((p - (1.0 - (-x).exp())).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn gamma_p_known_value() {
        // P(1.5, 1.5): chi-squared CDF with 3 dof at x = 3.0 ≈ 0.608375.
        let p = gamma_p(1.5, 1.5).unwrap();
        assert!((p - 0.608_374_823).abs() < 1e-8, "got {p}");
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            for x in [0.2, 1.0, 4.0, 25.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert!((p + q - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_rejects_bad_params() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(-1.0, 1.0).is_err());
        assert!(gamma_p(1.0, -0.5).is_err());
        assert!(gamma_p(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.3;
            let p = gamma_p(4.0, x).unwrap();
            assert!(p >= prev);
            prev = p;
        }
    }
}
