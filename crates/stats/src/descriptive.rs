//! Descriptive statistics: means, variances, extrema and error metrics.
//!
//! The dI/dt methodology leans on *variance* as its central quantity: the
//! paper estimates voltage variance from per-scale wavelet (current)
//! variance. These helpers operate on `&[f64]` slices so they compose with
//! both raw traces and wavelet coefficient rows.

use crate::StatsError;

/// Arithmetic mean of a sample.
///
/// Returns `0.0` for an empty slice; callers that must distinguish the
/// empty case should check the length first or use [`Summary::from_slice`].
///
/// # Examples
///
/// ```
/// assert_eq!(didt_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
#[must_use]
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (divides by `n`).
///
/// This matches the paper's use of variance as a signal-power measure
/// (Parseval's relation splits *population* variance across wavelet
/// scales exactly).
///
/// # Examples
///
/// ```
/// let v = didt_stats::variance(&[1.0, 1.0, 3.0, 3.0]);
/// assert_eq!(v, 1.0);
/// ```
#[must_use]
pub fn variance(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (divides by `n - 1`).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when fewer than two points are
/// supplied.
pub fn sample_variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: data.len(),
        });
    }
    let m = mean(data);
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Population standard deviation.
///
/// # Examples
///
/// ```
/// let s = didt_stats::std_dev(&[2.0, 4.0]);
/// assert_eq!(s, 1.0);
/// ```
#[must_use]
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Minimum of a sample, ignoring NaNs. Returns `f64::INFINITY` when empty.
#[must_use]
pub fn min(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::INFINITY, f64::min)
}

/// Maximum of a sample, ignoring NaNs. Returns `f64::NEG_INFINITY` when empty.
#[must_use]
pub fn max(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Root-mean-square error between an estimate series and a reference.
///
/// The paper reports its headline offline-estimation accuracy as an RMS
/// error of 0.94 % across benchmarks (Figure 9); this is the metric used
/// to compute that number.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when the slices differ in length
/// and [`StatsError::InsufficientData`] when they are empty.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// let e = didt_stats::rms_error(&[1.0, 2.0], &[1.0, 4.0])?;
/// assert!((e - 2.0f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn rms_error(estimate: &[f64], reference: &[f64]) -> Result<f64, StatsError> {
    if estimate.len() != reference.len() {
        return Err(StatsError::LengthMismatch {
            left: estimate.len(),
            right: reference.len(),
        });
    }
    if estimate.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let sum_sq: f64 = estimate
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    Ok((sum_sq / estimate.len() as f64).sqrt())
}

/// One-pass summary of a trace: count, mean, variance and extrema.
///
/// # Examples
///
/// ```
/// use didt_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.count, 3);
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples observed.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice in a single pass (Welford's algorithm).
    #[must_use]
    pub fn from_slice(data: &[f64]) -> Self {
        let mut s = StreamingSummary::new();
        for &x in data {
            s.push(x);
        }
        s.finish()
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Incremental summary accumulator (Welford), usable on streaming traces
/// too long to buffer.
///
/// # Examples
///
/// ```
/// use didt_stats::descriptive::StreamingSummary;
///
/// let mut acc = StreamingSummary::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// let s = acc.finish();
/// assert_eq!(s.mean, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamingSummary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingSummary {
    /// Create an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        StreamingSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current running mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current population variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Consume the accumulator, producing a [`Summary`].
    #[must_use]
    pub fn finish(self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean,
            variance: if self.count == 0 {
                0.0
            } else {
                self.m2 / self.count as f64
            },
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_of_constant() {
        assert_eq!(mean(&[5.0; 17]), 5.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0; 8]), 0.0);
    }

    #[test]
    fn population_vs_sample_variance() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let pop = variance(&data);
        let samp = sample_variance(&data).unwrap();
        assert!((pop - 1.25).abs() < 1e-12);
        assert!((samp - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_needs_two_points() {
        assert!(matches!(
            sample_variance(&[1.0]),
            Err(StatsError::InsufficientData { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn min_max_ignore_nan() {
        let data = [1.0, f64::NAN, -2.0, 7.0];
        assert_eq!(min(&data), -2.0);
        assert_eq!(max(&data), 7.0);
    }

    #[test]
    fn rms_error_zero_for_identical() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rms_error(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn rms_error_rejects_mismatch() {
        assert!(matches!(
            rms_error(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn rms_error_rejects_empty() {
        assert!(rms_error(&[], &[]).is_err());
    }

    #[test]
    fn streaming_matches_batch() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.0)
            .collect();
        let s = Summary::from_slice(&data);
        assert!((s.mean - mean(&data)).abs() < 1e-12);
        assert!((s.variance - variance(&data)).abs() < 1e-10);
        assert_eq!(s.min, min(&data));
        assert_eq!(s.max, max(&data));
        assert_eq!(s.count, data.len());
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = StreamingSummary::new().finish();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.variance, 0.0);
    }
}
