//! Correlation measures.
//!
//! Step 3 of the paper's offline methodology (§4.1) computes the
//! correlation between *adjacent* wavelet detail coefficients on each
//! scale: strong positive or negative correlation corresponds to pulse
//! trains that can build constructive interference at the power supply's
//! resonant frequency.

use crate::{mean, StatsError};

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns a value in [-1, 1]. When either sample has zero variance the
/// correlation is defined here as `0.0` (no linear relationship can be
/// asserted), which is the behaviour the variance model wants: a flat
/// coefficient row contributes no resonance amplification.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when lengths differ and
/// [`StatsError::InsufficientData`] for samples shorter than 2.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((didt_stats::pearson(&x, &y)? - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: x.len(),
        });
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return Ok(0.0);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Lag-`k` sample autocorrelation of a series.
///
/// Normalized by the series' own variance, so a white-noise series gives
/// values near zero at every nonzero lag and a period-`2k` square wave
/// gives -1 at lag `k`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when the series is shorter
/// than `lag + 2`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// // Alternating series is perfectly anti-correlated at lag 1.
/// let alt: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let r = didt_stats::autocorrelation(&alt, 1)?;
/// assert!(r < -0.9);
/// # Ok(())
/// # }
/// ```
pub fn autocorrelation(series: &[f64], lag: usize) -> Result<f64, StatsError> {
    if series.len() < lag + 2 {
        return Err(StatsError::InsufficientData {
            needed: lag + 2,
            got: series.len(),
        });
    }
    if lag == 0 {
        return Ok(1.0);
    }
    let m = mean(series);
    let mut num = 0.0;
    for i in 0..series.len() - lag {
        num += (series[i] - m) * (series[i + lag] - m);
    }
    let den: f64 = series.iter().map(|&x| (x - m) * (x - m)).sum();
    if den <= 0.0 {
        return Ok(0.0);
    }
    Ok((num / den).clamp(-1.0, 1.0))
}

/// Correlation between adjacent elements, i.e. lag-1 autocorrelation.
///
/// This is the quantity the paper's step 3 computes on each wavelet
/// detail scale.
///
/// # Errors
///
/// Propagates [`autocorrelation`]'s error conditions.
pub fn lag_correlation(series: &[f64]) -> Result<f64, StatsError> {
    autocorrelation(series, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0];
        let y = [10.0, 20.0, 30.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [3.0, 5.0, 7.0];
        assert_eq!(pearson(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let s = [1.0, 5.0, 2.0, 8.0];
        assert_eq!(autocorrelation(&s, 0).unwrap(), 1.0);
    }

    #[test]
    fn autocorrelation_constant_is_zero() {
        let s = [4.0; 32];
        assert_eq!(autocorrelation(&s, 1).unwrap(), 0.0);
    }

    #[test]
    fn autocorrelation_period_two() {
        let s: Vec<f64> = (0..128)
            .map(|i| if i % 2 == 0 { 2.0 } else { -2.0 })
            .collect();
        assert!(autocorrelation(&s, 1).unwrap() < -0.95);
        assert!(autocorrelation(&s, 2).unwrap() > 0.9);
    }

    #[test]
    fn autocorrelation_short_series_errors() {
        assert!(autocorrelation(&[1.0, 2.0], 4).is_err());
    }

    #[test]
    fn lag_correlation_matches_lag1() {
        let s = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        assert_eq!(
            lag_correlation(&s).unwrap(),
            autocorrelation(&s, 1).unwrap()
        );
    }

    #[test]
    fn values_bounded() {
        let x: Vec<f64> = (0..50).map(|i| ((i * 31) % 17) as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 13) % 23) as f64).collect();
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
        for lag in 0..10 {
            let a = autocorrelation(&x, lag).unwrap();
            assert!((-1.0..=1.0).contains(&a), "lag {lag}");
        }
    }
}
