use std::error::Error;
use std::fmt;

/// Error type for statistical computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input sample was empty or too short for the requested operation.
    InsufficientData {
        /// Number of data points required.
        needed: usize,
        /// Number of data points provided.
        got: usize,
    },
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was rejected.
        value: f64,
    },
    /// The two input slices must have equal length.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            StatsError::NoConvergence { routine } => {
                write!(f, "numerical routine did not converge: {routine}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            StatsError::InsufficientData { needed: 2, got: 0 },
            StatsError::InvalidParameter {
                name: "k",
                value: -1.0,
            },
            StatsError::LengthMismatch { left: 3, right: 4 },
            StatsError::NoConvergence { routine: "gamma_p" },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
