//! Chi-squared distribution and the goodness-of-fit test for normality.
//!
//! Paper §4.1 classifies 32/64/128-cycle execution windows as Gaussian via
//! a chi-squared goodness-of-fit test at 95 % significance against a
//! normal distribution with the sample's own mean and variance. Figures 6
//! and 12 report acceptance rates; this module implements that exact test.

use crate::gamma::gamma_p;
use crate::normal::Normal;
use crate::{mean, variance, StatsError};

/// Chi-squared distribution with `k` degrees of freedom.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// use didt_stats::ChiSquared;
///
/// let chi = ChiSquared::new(3.0)?;
/// // Median of chi²(3) is about 2.366.
/// let median = chi.quantile(0.5)?;
/// assert!((median - 2.366).abs() < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    dof: f64,
}

impl ChiSquared {
    /// Create a chi-squared distribution with `dof` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `dof` is a positive
    /// finite number.
    pub fn new(dof: f64) -> Result<Self, StatsError> {
        if !(dof > 0.0 && dof.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "dof",
                value: dof,
            });
        }
        Ok(ChiSquared { dof })
    }

    /// Degrees of freedom.
    #[must_use]
    pub fn dof(&self) -> f64 {
        self.dof
    }

    /// Cumulative distribution function `P(X <= x)`.
    ///
    /// Values of `x` below zero return 0.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.dof / 2.0, x / 2.0).unwrap_or(f64::NAN)
    }

    /// Survival function `P(X > x)` — the p-value of a test statistic `x`.
    #[must_use]
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile (inverse CDF) by bisection.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `p` is outside (0, 1).
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
            });
        }
        let mut lo = 0.0f64;
        let mut hi = self.dof.max(1.0);
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NoConvergence {
                    routine: "chi_squared_quantile",
                });
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// Decision of a goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GofOutcome {
    /// The null hypothesis (data follows the tested distribution) was not
    /// rejected at the requested significance.
    Accepted,
    /// The null hypothesis was rejected.
    Rejected,
    /// The test could not be applied, e.g. because the sample variance was
    /// (numerically) zero. The paper's methodology treats such flat
    /// windows as "low variance, not a dI/dt concern" rather than Gaussian.
    Degenerate,
}

/// Full report of a chi-squared goodness-of-fit run.
#[derive(Debug, Clone, PartialEq)]
pub struct GofReport {
    /// Test decision.
    pub decision: GofOutcome,
    /// The chi-squared test statistic (0 for degenerate windows).
    pub statistic: f64,
    /// The critical value the statistic was compared against.
    pub critical_value: f64,
    /// Degrees of freedom used (bins − 1 − 2 estimated parameters).
    pub dof: usize,
    /// p-value of the observed statistic.
    pub p_value: f64,
}

impl GofReport {
    /// `true` when the window qualified as Gaussian.
    #[must_use]
    pub fn is_gaussian(&self) -> bool {
        self.decision == GofOutcome::Accepted
    }
}

/// Chi-squared goodness-of-fit test for normality with equiprobable bins.
///
/// The test partitions the real line into `bins` intervals with equal
/// probability under the fitted normal (mean and variance estimated from
/// the sample, costing two degrees of freedom as in the paper's standard
/// procedure, cf. Kreyszig). Equiprobable binning keeps expected counts
/// uniform, which is the textbook-recommended way to apply the test to a
/// continuous distribution.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// use didt_stats::chi_squared::ChiSquaredGof;
///
/// let test = ChiSquaredGof::new(8)?;
/// // A pseudo-Gaussian sample built from sums of uniforms (CLT):
/// let mut state = 0x2545F4914F6CDD1Du64;
/// let mut next = move || {
///     state ^= state << 13; state ^= state >> 7; state ^= state << 17;
///     (state >> 11) as f64 / (1u64 << 53) as f64
/// };
/// let sample: Vec<f64> = (0..256)
///     .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
///     .collect();
/// let report = test.test_normality(&sample, 0.95)?;
/// assert!(report.is_gaussian());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChiSquaredGof {
    bins: usize,
}

impl ChiSquaredGof {
    /// Minimum variance for a window to be testable; below this the window
    /// is reported [`GofOutcome::Degenerate`].
    pub const DEGENERATE_VARIANCE: f64 = 1e-12;

    /// Create a test using `bins` equiprobable bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `bins < 4`: with two
    /// parameters estimated from the data, fewer than 4 bins leaves no
    /// degrees of freedom.
    pub fn new(bins: usize) -> Result<Self, StatsError> {
        if bins < 4 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: bins as f64,
            });
        }
        Ok(ChiSquaredGof { bins })
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Test whether `data` is consistent with a normal distribution whose
    /// mean and variance match the sample, at the given `significance`
    /// (e.g. `0.95` for the paper's 95 % test).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when the sample has fewer
    /// than `5 * bins` points (the rule of thumb that expected counts
    /// should be at least 5), and [`StatsError::InvalidParameter`] for a
    /// significance outside (0, 1).
    pub fn test_normality(&self, data: &[f64], significance: f64) -> Result<GofReport, StatsError> {
        if !(significance > 0.0 && significance < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "significance",
                value: significance,
            });
        }
        let needed = 4 * self.bins;
        if data.len() < needed {
            return Err(StatsError::InsufficientData {
                needed,
                got: data.len(),
            });
        }
        let dof = self.bins - 1 - 2;
        let chi = ChiSquared::new(dof as f64)?;
        let critical_value = chi.quantile(significance)?;

        let m = mean(data);
        let var = variance(data);
        if var < Self::DEGENERATE_VARIANCE {
            return Ok(GofReport {
                decision: GofOutcome::Degenerate,
                statistic: 0.0,
                critical_value,
                dof,
                p_value: 1.0,
            });
        }
        let fitted = Normal::new(m, var.sqrt())?;

        // Equiprobable bin edges from the fitted normal's quantiles.
        let mut edges = Vec::with_capacity(self.bins - 1);
        for i in 1..self.bins {
            edges.push(fitted.quantile(i as f64 / self.bins as f64)?);
        }

        let mut observed = vec![0usize; self.bins];
        for &x in data {
            // partition_point gives the index of the first edge > x, i.e.
            // the bin x falls into.
            let bin = edges.partition_point(|&e| e <= x);
            observed[bin] += 1;
        }

        let expected = data.len() as f64 / self.bins as f64;
        let statistic: f64 = observed
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();

        let p_value = chi.sf(statistic);
        let decision = if statistic <= critical_value {
            GofOutcome::Accepted
        } else {
            GofOutcome::Rejected
        };
        Ok(GofReport {
            decision,
            statistic,
            critical_value,
            dof,
            p_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_squared_cdf_reference() {
        // chi²(2) has CDF 1 - exp(-x/2).
        let chi = ChiSquared::new(2.0).unwrap();
        for x in [0.5, 1.0, 3.0, 8.0] {
            assert!((chi.cdf(x) - (1.0 - (-x / 2.0).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_squared_critical_values() {
        // Standard table: chi²₀.₉₅ critical values.
        let cases = [(1.0, 3.841), (5.0, 11.070), (10.0, 18.307)];
        for (dof, want) in cases {
            let q = ChiSquared::new(dof).unwrap().quantile(0.95).unwrap();
            assert!((q - want).abs() < 5e-3, "dof {dof}: {q} vs {want}");
        }
    }

    #[test]
    fn chi_squared_rejects_bad_dof() {
        assert!(ChiSquared::new(0.0).is_err());
        assert!(ChiSquared::new(-2.0).is_err());
        assert!(ChiSquared::new(f64::NAN).is_err());
    }

    #[test]
    fn cdf_negative_is_zero() {
        let chi = ChiSquared::new(4.0).unwrap();
        assert_eq!(chi.cdf(-1.0), 0.0);
        assert_eq!(chi.cdf(0.0), 0.0);
    }

    #[test]
    fn gof_requires_enough_bins() {
        assert!(ChiSquaredGof::new(3).is_err());
        assert!(ChiSquaredGof::new(4).is_ok());
    }

    #[test]
    fn gof_rejects_uniform_ramp() {
        let data: Vec<f64> = (0..512).map(|i| i as f64).collect();
        let test = ChiSquaredGof::new(8).unwrap();
        let r = test.test_normality(&data, 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Rejected);
        assert!(r.statistic > r.critical_value);
    }

    #[test]
    fn gof_degenerate_on_constant() {
        let data = vec![2.5; 256];
        let test = ChiSquaredGof::new(8).unwrap();
        let r = test.test_normality(&data, 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Degenerate);
        assert!(!r.is_gaussian());
    }

    #[test]
    fn gof_accepts_clt_gaussian() {
        // Sum of 16 xorshift uniforms per sample: very close to Gaussian.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next_uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let sample: Vec<f64> = (0..1024)
            .map(|_| (0..16).map(|_| next_uniform()).sum::<f64>())
            .collect();
        let test = ChiSquaredGof::new(8).unwrap();
        let r = test.test_normality(&sample, 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Accepted, "stat {}", r.statistic);
    }

    #[test]
    fn gof_rejects_bimodal() {
        // Two far-apart spikes: definitely not Gaussian.
        let mut data = vec![0.0; 128];
        data.extend(vec![10.0; 128]);
        // Tiny jitter so variance isn't degenerate between the two modes.
        for (i, x) in data.iter_mut().enumerate() {
            *x += (i % 7) as f64 * 1e-3;
        }
        let test = ChiSquaredGof::new(8).unwrap();
        let r = test.test_normality(&data, 0.95).unwrap();
        assert_eq!(r.decision, GofOutcome::Rejected);
    }

    #[test]
    fn gof_insufficient_data() {
        let test = ChiSquaredGof::new(8).unwrap();
        let r = test.test_normality(&[1.0; 10], 0.95);
        assert!(matches!(r, Err(StatsError::InsufficientData { .. })));
    }

    #[test]
    fn gof_invalid_significance() {
        let test = ChiSquaredGof::new(8).unwrap();
        assert!(test.test_normality(&[0.0; 64], 0.0).is_err());
        assert!(test.test_normality(&[0.0; 64], 1.0).is_err());
    }

    #[test]
    fn p_value_consistent_with_decision() {
        let data: Vec<f64> = (0..512).map(|i| ((i * 37) % 100) as f64).collect();
        let test = ChiSquaredGof::new(8).unwrap();
        let r = test.test_normality(&data, 0.95).unwrap();
        match r.decision {
            GofOutcome::Accepted => assert!(r.p_value >= 0.05),
            GofOutcome::Rejected => assert!(r.p_value < 0.05),
            GofOutcome::Degenerate => panic!("unexpected degenerate"),
        }
    }
}
