//! Higher moments and the Jarque–Bera normality test.
//!
//! Skewness and excess kurtosis describe *how* a current window deviates
//! from Gaussian — one-sided activity bursts skew the distribution,
//! stall/burst mixtures fatten its tails. The Jarque–Bera statistic
//! turns both into a third normality classifier (χ² with 2 dof), used to
//! cross-check the paper's chi-squared choice.

use crate::chi_squared::{ChiSquared, GofOutcome, GofReport};
use crate::{mean, variance, StatsError};

/// Sample skewness (third standardized moment).
///
/// Returns 0 for degenerate (constant) samples.
///
/// # Examples
///
/// ```
/// // A one-sided spike train is right-skewed.
/// let mut data = vec![0.0; 90];
/// data.extend(vec![10.0; 10]);
/// assert!(didt_stats::skewness(&data) > 1.0);
/// ```
#[must_use]
pub fn skewness(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    if data.len() < 3 {
        return 0.0;
    }
    let m = mean(data);
    let var = variance(data);
    if var < 1e-300 {
        return 0.0;
    }
    let m3: f64 = data.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    m3 / var.powf(1.5)
}

/// Sample excess kurtosis (fourth standardized moment minus 3).
///
/// Zero for a normal distribution; positive for heavy tails.
///
/// # Examples
///
/// ```
/// // A two-point distribution has the minimum kurtosis, -2.
/// let data: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// assert!((didt_stats::excess_kurtosis(&data) + 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn excess_kurtosis(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    if data.len() < 4 {
        return 0.0;
    }
    let m = mean(data);
    let var = variance(data);
    if var < 1e-300 {
        return 0.0;
    }
    let m4: f64 = data.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
    m4 / (var * var) - 3.0
}

/// Jarque–Bera normality test: `JB = n/6·(S² + K²/4)` is asymptotically
/// χ²(2) under normality.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// use didt_stats::chi_squared::GofOutcome;
/// use didt_stats::jarque_bera;
///
/// let ramp: Vec<f64> = (0..512).map(|i| i as f64).collect();
/// // A uniform ramp has kurtosis -1.2: flagged decisively.
/// let r = jarque_bera(&ramp, 0.95)?;
/// assert_eq!(r.decision, GofOutcome::Rejected);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] below 16 samples (the
/// asymptotic χ² approximation needs some length) and
/// [`StatsError::InvalidParameter`] for a significance outside (0, 1).
pub fn jarque_bera(data: &[f64], significance: f64) -> Result<GofReport, StatsError> {
    if !(significance > 0.0 && significance < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "significance",
            value: significance,
        });
    }
    if data.len() < 16 {
        return Err(StatsError::InsufficientData {
            needed: 16,
            got: data.len(),
        });
    }
    let chi = ChiSquared::new(2.0)?;
    let critical_value = chi.quantile(significance)?;
    if variance(data) < 1e-12 {
        return Ok(GofReport {
            decision: GofOutcome::Degenerate,
            statistic: 0.0,
            critical_value,
            dof: 2,
            p_value: 1.0,
        });
    }
    let s = skewness(data);
    let k = excess_kurtosis(data);
    let n = data.len() as f64;
    let statistic = n / 6.0 * (s * s + k * k / 4.0);
    let p_value = chi.sf(statistic);
    let decision = if statistic <= critical_value {
        GofOutcome::Accepted
    } else {
        GofOutcome::Rejected
    };
    Ok(GofReport {
        decision,
        statistic,
        critical_value,
        dof: 2,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clt_gaussian(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn symmetric_data_has_zero_skewness() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 - 49.5).collect();
        assert!(skewness(&data).abs() < 1e-10);
    }

    #[test]
    fn gaussian_sample_near_zero_moments() {
        let data = clt_gaussian(4096, 0xBEEF);
        assert!(skewness(&data).abs() < 0.15, "skew {}", skewness(&data));
        assert!(
            excess_kurtosis(&data).abs() < 0.3,
            "kurtosis {}",
            excess_kurtosis(&data)
        );
    }

    #[test]
    fn jb_accepts_gaussian_rejects_bimodal() {
        let g = clt_gaussian(1024, 0x1234);
        assert_eq!(
            jarque_bera(&g, 0.95).unwrap().decision,
            GofOutcome::Accepted
        );
        let mut bimodal = vec![0.0; 256];
        bimodal.extend(vec![10.0; 256]);
        assert_eq!(
            jarque_bera(&bimodal, 0.95).unwrap().decision,
            GofOutcome::Rejected
        );
    }

    #[test]
    fn jb_degenerate_and_errors() {
        assert_eq!(
            jarque_bera(&[5.0; 64], 0.95).unwrap().decision,
            GofOutcome::Degenerate
        );
        assert!(jarque_bera(&[0.0; 4], 0.95).is_err());
        assert!(jarque_bera(&clt_gaussian(64, 1), 1.5).is_err());
    }

    #[test]
    fn jb_statistic_grows_with_skew() {
        let g = clt_gaussian(512, 9);
        let skewed: Vec<f64> = g.iter().map(|&x| x.exp()).collect(); // log-normal
        let jb_g = jarque_bera(&g, 0.95).unwrap().statistic;
        let jb_s = jarque_bera(&skewed, 0.95).unwrap().statistic;
        assert!(jb_s > 10.0 * jb_g, "{jb_s} vs {jb_g}");
    }

    #[test]
    fn short_samples_return_zero_moments() {
        assert_eq!(skewness(&[1.0, 2.0]), 0.0);
        assert_eq!(excess_kurtosis(&[1.0, 2.0, 3.0]), 0.0);
    }
}
