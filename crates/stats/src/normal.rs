//! The normal (Gaussian) distribution.
//!
//! The dI/dt methodology models per-cycle current in "Gaussian windows" as
//! normally distributed, propagates it through the (linear) power delivery
//! network — a Gaussian input to a linear system yields a Gaussian output —
//! and then reads voltage-emergency probabilities straight off the normal
//! CDF (paper §4.1, step 5).

use crate::StatsError;

/// Error function `erf(x)`, accurate to ~1.2e-16 over the real line.
///
/// Uses the rational Chebyshev approximation from W. J. Cody's ERF
/// algorithm via the complementary-error split.
///
/// # Examples
///
/// ```
/// assert!((didt_stats::normal::erf(0.0)).abs() < 1e-15);
/// assert!((didt_stats::normal::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Stable for large positive `x` where `erf(x)` saturates at 1.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    if z < 2.0 {
        // Maclaurin series of erf: erf(x) = 2/√π Σ (-1)^n x^(2n+1)/(n!(2n+1)).
        // Converges to ~1e-13 absolute in < 50 terms for |x| < 2.
        let x2 = x * x;
        let mut sum = 0.0;
        let mut num = x; // carries (-1)^n x^(2n+1) / n!
        let mut n = 0u32;
        loop {
            let t = num / (2 * n + 1) as f64;
            sum += t;
            if t.abs() < 1e-18 || n > 60 {
                break;
            }
            n += 1;
            num *= -x2 / n as f64;
        }
        return 1.0 - 2.0 / std::f64::consts::PI.sqrt() * sum;
    }
    // Rational approximation (Numerical Recipes `erfcc`), relative error
    // < 1.2e-7; adequate for tail probabilities in goodness-of-fit tests.
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// A normal distribution with the given mean and standard deviation.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), didt_stats::StatsError> {
/// use didt_stats::Normal;
///
/// let n = Normal::new(1.0, 0.01)?; // nominal 1.0 V supply, 10 mV sigma
/// let p_low = n.cdf(0.97);         // probability of being below 0.97 V
/// assert!(p_low < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `std_dev` is not a
    /// positive finite number or `mean` is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
            });
        }
        if !(std_dev > 0.0 && std_dev.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "std_dev",
                value: std_dev,
            });
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density at `x`.
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P(X <= x)`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Survival function `P(X > x) = 1 - cdf(x)`, numerically stable in
    /// the upper tail.
    #[must_use]
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Inverse CDF (quantile function).
    ///
    /// Uses bisection refined by Newton iterations; accurate to ~1e-12 in
    /// the central region.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `p` is outside (0, 1).
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
            });
        }
        // Bracket in standard units then refine.
        let mut lo = -40.0f64;
        let mut hi = 40.0f64;
        let std = Normal {
            mean: 0.0,
            std_dev: 1.0,
        };
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if std.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut z = 0.5 * (lo + hi);
        // Newton polish.
        for _ in 0..4 {
            let f = std.cdf(z) - p;
            let d = std.pdf(z);
            if d > 0.0 {
                z -= f / d;
            }
        }
        Ok(self.mean + self.std_dev * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // (x, erf(x)) reference pairs.
        let refs = [
            (0.0, 0.0),
            (0.1, 0.112_462_916_018_284_89),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in refs {
            let got = erf(x);
            assert!((got - want).abs() < 1e-7, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-7, "erf odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_large_argument_is_tiny_but_positive() {
        let v = erfc(6.0);
        assert!(v > 0.0 && v < 1e-15);
    }

    #[test]
    fn normal_cdf_standard_values() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-7);
        assert!((n.cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
    }

    #[test]
    fn cdf_plus_sf_is_one() {
        let n = Normal::new(1.0, 0.02).unwrap();
        for x in [0.9, 0.95, 1.0, 1.05, 1.1] {
            assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(5.0, 2.0).unwrap();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!(n.quantile(0.0).is_err());
        assert!(n.quantile(1.0).is_err());
        assert!(n.quantile(-0.5).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_trapezoid() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let (a, b, steps) = (-8.0, 8.0, 4000);
        let h = (b - a) / steps as f64;
        let mut area = 0.0;
        for i in 0..steps {
            let x0 = a + i as f64 * h;
            area += 0.5 * (n.pdf(x0) + n.pdf(x0 + h)) * h;
        }
        assert!((area - 1.0).abs() < 1e-9);
    }
}
