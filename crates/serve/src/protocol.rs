//! Wire protocol: framing plus the request/response JSON codec.
//!
//! # Framing
//!
//! Every message is one *frame*: a 4-byte big-endian `u32` payload
//! length followed by exactly that many bytes of UTF-8 JSON. Frames
//! longer than the receiver's limit ([`MAX_FRAME_LEN`] by default) are
//! rejected before any payload is read, so a hostile length prefix
//! cannot make the server allocate unboundedly.
//!
//! [`FrameReader`] is a resumable decoder: it buffers partial frames
//! across short reads and read timeouts, which is what lets server
//! connection threads poll a shutdown flag without ever losing frame
//! sync mid-message.
//!
//! # Requests and responses
//!
//! A request is `{"id", "kind", "deadline_ms"?, "spec"?}`; a response
//! is `{"id", "status", ...}` with `status` one of `ok`, `rejected`,
//! `error`. All f64 fields round-trip bit-exactly through the JSON
//! layer (shortest-roundtrip rendering), which the `load_report`
//! replay-fidelity check relies on.

use std::fmt;
use std::io::{self, Read, Write};

use didt_bench::{ControllerSpec, GainSnapshotEntry};
use didt_core::characterize::ScaleGainModel;
use didt_dsp::{BoundaryMode, Wavelet, WaveletFamily};
use didt_telemetry::{seed_from_hex, seed_to_hex, Json, JsonError};

/// Protocol version reported by `Ping`. Version 2 adds the streaming
/// session kinds (`session_*`) and the cache-warming snapshot pair
/// (`snapshot_export` / `snapshot_import`); version-1 requests decode
/// unchanged.
pub const PROTOCOL_VERSION: u64 = 2;

/// Default upper bound on a frame payload (16 MiB — a million-sample
/// inline trace renders to roughly this much JSON).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Peer closed mid-frame.
    Truncated {
        /// Bytes the frame promised (prefix + payload).
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// Length prefix exceeds the receiver's limit.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// Receiver's limit.
        max: usize,
    },
    /// The reader's abort predicate fired while waiting (shutdown).
    Aborted,
    /// Payload was not valid JSON.
    Json(JsonError),
    /// Transport error.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds limit of {max}")
            }
            FrameError::Aborted => write!(f, "read aborted"),
            FrameError::Json(e) => write!(f, "frame payload is not valid JSON: {e}"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame: length prefix plus rendered JSON.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let payload = json.render();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// A resumable frame decoder over any [`Read`].
///
/// Partial frames survive short reads and read timeouts: bytes received
/// so far are buffered, and the next [`FrameReader::read_frame`] call
/// picks up exactly where the stream left off. Timeouts
/// (`WouldBlock`/`TimedOut`) are not errors — they poll the caller's
/// abort predicate and keep waiting.
///
/// Both the stream buffer and the payload scratch persist across
/// frames on a connection: after the first request of a given size,
/// later requests decode with **zero** new allocations (the
/// `serve.frame.buf_reuse` counter tracks reused decodes; the
/// `service_protocol` suite asserts capacities stop growing).
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    payload: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Capacity of the payload scratch buffer (allocation-growth
    /// assertions in tests).
    #[must_use]
    pub fn payload_capacity(&self) -> usize {
        self.payload.capacity()
    }

    /// Capacity of the stream buffer (allocation-growth assertions in
    /// tests).
    #[must_use]
    pub fn buf_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Read one complete frame and parse its payload.
    ///
    /// `should_abort` is consulted whenever the underlying read times
    /// out; returning `true` yields [`FrameError::Aborted`].
    ///
    /// # Errors
    ///
    /// All [`FrameError`] variants; see their docs.
    pub fn read_frame(
        &mut self,
        max_len: usize,
        should_abort: &mut dyn FnMut() -> bool,
    ) -> Result<Json, FrameError> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len > max_len {
                    return Err(FrameError::TooLarge { len, max: max_len });
                }
                if self.buf.len() >= 4 + len {
                    // Copy the payload into the reusable scratch (its
                    // capacity survives across frames — no per-request
                    // allocation once warmed) and shift the remainder
                    // of the stream buffer down in place.
                    let reused = self.payload.capacity() >= len;
                    self.payload.clear();
                    self.payload.extend_from_slice(&self.buf[4..4 + len]);
                    self.buf.drain(..4 + len);
                    if reused {
                        didt_telemetry::MetricsRegistry::global()
                            .counter("serve.frame.buf_reuse")
                            .incr();
                    }
                    let text = std::str::from_utf8(&self.payload).map_err(|e| {
                        FrameError::Json(JsonError {
                            message: format!("payload is not UTF-8: {e}"),
                            offset: 0,
                        })
                    })?;
                    return Json::parse(text).map_err(FrameError::Json);
                }
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Err(FrameError::Closed)
                    } else {
                        let expected = if self.buf.len() >= 4 {
                            4 + u32::from_be_bytes([
                                self.buf[0],
                                self.buf[1],
                                self.buf[2],
                                self.buf[3],
                            ]) as usize
                        } else {
                            4
                        };
                        Err(FrameError::Truncated {
                            expected,
                            got: self.buf.len(),
                        })
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if should_abort() {
                        return Err(FrameError::Aborted);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Where a `Characterize` request's current trace comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSource {
    /// The request carries the per-cycle current samples inline.
    Inline(Vec<f64>),
    /// The server synthesizes the trace from a named benchmark model
    /// (cached per distinct spec).
    Synth {
        /// Benchmark name (`gzip`, `swim`, ...).
        benchmark: String,
        /// Workload seed.
        seed: u64,
        /// Warmup cycles discarded before capture.
        warmup: usize,
        /// Cycles captured.
        cycles: usize,
    },
    /// The server reads a recorded `.dtrc` trace file (TRACE_FORMAT.md)
    /// from its local filesystem; pre-roll records are skipped per the
    /// file's header. Requests without this field keep the synthetic
    /// paths, so pre-trace clients are unaffected.
    Recorded {
        /// Server-local path to the `.dtrc` file.
        path: String,
    },
}

/// Spec for the `Characterize` analysis (paper §4: per-scale variance,
/// Gaussianity, Gaussian emergency-fraction estimate).
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeSpec {
    /// Trace to analyze.
    pub trace: TraceSource,
    /// Supply impedance, percent of target.
    pub pdn_pct: f64,
    /// Analysis window (power of two, ≥ 8).
    pub window: usize,
    /// Emergency voltage threshold (V).
    pub threshold: f64,
    /// χ² significance level for the Gaussianity study.
    pub significance: f64,
    /// Random windows sampled for the Gaussianity study.
    pub gauss_windows: usize,
    /// Wavelet basis family for the variance analysis. `Haar` (the
    /// default, and the paper's basis) keeps the streaming single-pass
    /// path; other families run the batch filter-generic transform.
    /// Requests that omit the field get Haar, so pre-family clients are
    /// unaffected.
    pub family: WaveletFamily,
    /// Boundary extension mode of the analysis transform. Only
    /// meaningful for non-Haar families (the Haar streaming path is
    /// inherently periodic); defaults to `Periodic`.
    pub boundary: BoundaryMode,
}

impl Default for CharacterizeSpec {
    fn default() -> Self {
        CharacterizeSpec {
            trace: TraceSource::Synth {
                benchmark: "gzip".to_string(),
                seed: 0xD1D7,
                warmup: 1_000,
                cycles: 8_192,
            },
            pdn_pct: 100.0,
            window: 256,
            threshold: 0.95,
            significance: 0.95,
            gauss_windows: 200,
            family: WaveletFamily::Haar,
            boundary: BoundaryMode::Periodic,
        }
    }
}

/// Spec for the `ClosedLoop` analysis (paper §5.3 / Table 2): one
/// sweep point run through the shared batch-runner context.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopSpec {
    /// Benchmark name.
    pub benchmark: String,
    /// Supply impedance, percent of target.
    pub pdn_pct: f64,
    /// Wavelet monitor term budget.
    pub monitor_terms: usize,
    /// Control scheme.
    pub controller: ControllerSpec,
    /// Instructions committed in the measured region.
    pub instructions: u64,
    /// Warmup cycles before measurement.
    pub warmup_cycles: u64,
    /// Optional server-local path to a recorded `.dtrc` trace
    /// (TRACE_FORMAT.md). When present, both legs replay the recorded
    /// stream through the point's PDN and controller instead of
    /// simulating the named benchmark live; when absent (every
    /// pre-trace client), the live synthetic path runs unchanged.
    pub replay: Option<String>,
}

/// Spec for the `Design` analysis (paper §5.2): monitor coefficient
/// selection and truncation error for a PDN spec.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Supply impedance, percent of target.
    pub pdn_pct: f64,
    /// Monitor window (power of two, ≥ 8).
    pub window: usize,
    /// Terms to keep.
    pub terms: usize,
    /// Current deviation (A) for the truncation error bound.
    pub i_dev: f64,
}

/// Spec for a streaming characterization session: a `Characterize`
/// analysis whose trace arrives incrementally via `SessionPush` chunks
/// instead of in one frame. Identical fields to [`CharacterizeSpec`]
/// minus the trace; sessions are restricted to the Haar/periodic basis
/// (the only one with a streaming transform).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Supply impedance, percent of target.
    pub pdn_pct: f64,
    /// Analysis window (power of two, ≥ 8).
    pub window: usize,
    /// Emergency voltage threshold (V).
    pub threshold: f64,
    /// χ² significance level for the Gaussianity study.
    pub significance: f64,
    /// Random windows sampled for the Gaussianity study.
    pub gauss_windows: usize,
    /// Wavelet basis; must be `Haar` (decode accepts any name, the
    /// handler rejects non-streaming bases with `bad_request`).
    pub family: WaveletFamily,
    /// Boundary mode; must be `Periodic` (see `family`).
    pub boundary: BoundaryMode,
}

impl Default for SessionSpec {
    fn default() -> Self {
        let d = CharacterizeSpec::default();
        SessionSpec {
            pdn_pct: d.pdn_pct,
            window: d.window,
            threshold: d.threshold,
            significance: d.significance,
            gauss_windows: d.gauss_windows,
            family: d.family,
            boundary: d.boundary,
        }
    }
}

/// The analyses a request can ask for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness / version check.
    Ping,
    /// Server statistics (counters, cache activity).
    Stats,
    /// Offline characterization of a trace.
    Characterize(CharacterizeSpec),
    /// Closed-loop control simulation of one sweep point.
    ClosedLoop(ClosedLoopSpec),
    /// Monitor design / truncation report.
    Design(DesignSpec),
    /// Open a streaming characterization session.
    SessionOpen(SessionSpec),
    /// Append current samples to an open session.
    SessionPush {
        /// Session id from the `SessionOpen` response.
        session: u64,
        /// Per-cycle current samples, appended in order.
        samples: Vec<f64>,
    },
    /// Compute the incremental verdict over all samples pushed so far.
    SessionVerdict {
        /// Session id from the `SessionOpen` response.
        session: u64,
    },
    /// Close a session and discard its state.
    SessionClose {
        /// Session id from the `SessionOpen` response.
        session: u64,
    },
    /// Export completed gain calibrations for warming a joining peer.
    SnapshotExport {
        /// Upper bound on entries returned.
        max_entries: usize,
    },
    /// Install peer-exported gain calibrations into the local cache.
    SnapshotImport {
        /// Entries from a peer's `SnapshotExport` response.
        entries: Vec<GainSnapshotEntry>,
    },
}

impl RequestBody {
    /// Stable wire name; also the metrics label.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RequestBody::Ping => "ping",
            RequestBody::Stats => "stats",
            RequestBody::Characterize(_) => "characterize",
            RequestBody::ClosedLoop(_) => "closed_loop",
            RequestBody::Design(_) => "design",
            RequestBody::SessionOpen(_) => "session_open",
            RequestBody::SessionPush { .. } => "session_push",
            RequestBody::SessionVerdict { .. } => "session_verdict",
            RequestBody::SessionClose { .. } => "session_close",
            RequestBody::SnapshotExport { .. } => "snapshot_export",
            RequestBody::SnapshotImport { .. } => "snapshot_import",
        }
    }

    /// Session id this request is bound to, for session-affine routing:
    /// a follow-up must land on the worker that owns the session.
    #[must_use]
    pub fn session_id(&self) -> Option<u64> {
        match *self {
            RequestBody::SessionPush { session, .. }
            | RequestBody::SessionVerdict { session }
            | RequestBody::SessionClose { session } => Some(session),
            _ => None,
        }
    }
}

/// FNV-1a over the calibration key parts — the cluster shard key. Every
/// request with the same (family, boundary, window, PDN bits) hashes to
/// the same shard, which is exactly the grouping the server's batch
/// drain uses, so one shard's memo caches stay hot and disjoint.
#[must_use]
pub fn calibration_shard_key(family: &str, boundary: &str, window: usize, pdn_bits: u64) -> u64 {
    let mut h = shard_fnv(FNV_SHARD_OFFSET, family.as_bytes());
    h = shard_fnv(h, &[0]);
    h = shard_fnv(h, boundary.as_bytes());
    h = shard_fnv(h, &[0]);
    h = shard_fnv(h, &(window as u64).to_le_bytes());
    shard_fnv(h, &pdn_bits.to_le_bytes())
}

const FNV_SHARD_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn shard_fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// Optional wall-clock budget; the server aborts work past it.
    pub deadline_ms: Option<u64>,
    /// The analysis.
    pub body: RequestBody,
}

fn controller_to_json(c: &ControllerSpec) -> Json {
    let mut pairs = vec![("scheme", Json::str(c.tag()))];
    match *c {
        ControllerSpec::None => {}
        ControllerSpec::AnalogThreshold {
            low,
            high,
            hysteresis,
        }
        | ControllerSpec::FullConvolution {
            low,
            high,
            hysteresis,
        } => {
            pairs.push(("low", Json::num(low)));
            pairs.push(("high", Json::num(high)));
            pairs.push(("hysteresis", Json::num(hysteresis)));
        }
        ControllerSpec::PipelineDamping { window, max_delta } => {
            pairs.push(("window", Json::num(window as f64)));
            pairs.push(("max_delta", Json::num(max_delta)));
        }
        ControllerSpec::WaveletThreshold {
            low,
            high,
            hysteresis,
            delay,
        }
        | ControllerSpec::BiquadRecursive {
            low,
            high,
            hysteresis,
            delay,
        } => {
            pairs.push(("low", Json::num(low)));
            pairs.push(("high", Json::num(high)));
            pairs.push(("hysteresis", Json::num(hysteresis)));
            pairs.push(("delay", Json::num(delay as f64)));
        }
        ControllerSpec::WaveletFamilyThreshold {
            low,
            high,
            hysteresis,
            delay,
            family,
            boundary,
        } => {
            pairs.push(("low", Json::num(low)));
            pairs.push(("high", Json::num(high)));
            pairs.push(("hysteresis", Json::num(hysteresis)));
            pairs.push(("delay", Json::num(delay as f64)));
            pairs.push(("family", Json::str(family.name())));
            pairs.push(("boundary", Json::str(boundary.name())));
        }
    }
    Json::obj(pairs)
}

fn req_f64(json: &Json, key: &str) -> Result<f64, String> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn req_usize(json: &Json, key: &str) -> Result<usize, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

/// Default cap on entries in one `SnapshotExport` response frame.
pub const SNAPSHOT_MAX_ENTRIES: usize = 4_096;

fn req_session(json: &Json) -> Result<u64, String> {
    json.get("session")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing or non-integer field `session`".to_string())
}

/// Optional `family` field: absent means Haar (pre-family wire compat).
fn req_family(json: &Json) -> Result<WaveletFamily, String> {
    match json.get("family") {
        None | Some(Json::Null) => Ok(WaveletFamily::Haar),
        Some(v) => {
            let s = v.as_str().ok_or("field `family` must be a string")?;
            WaveletFamily::parse(s).ok_or_else(|| format!("unknown wavelet family `{s}`"))
        }
    }
}

/// Optional `boundary` field: absent means periodic.
fn req_boundary(json: &Json) -> Result<BoundaryMode, String> {
    match json.get("boundary") {
        None | Some(Json::Null) => Ok(BoundaryMode::Periodic),
        Some(v) => {
            let s = v.as_str().ok_or("field `boundary` must be a string")?;
            BoundaryMode::parse(s).ok_or_else(|| format!("unknown boundary mode `{s}`"))
        }
    }
}

fn controller_from_json(json: &Json) -> Result<ControllerSpec, String> {
    let scheme = json
        .get("scheme")
        .and_then(Json::as_str)
        .ok_or("controller is missing string field `scheme`")?;
    let thresholds = || -> Result<(f64, f64, f64), String> {
        Ok((
            req_f64(json, "low")?,
            req_f64(json, "high")?,
            req_f64(json, "hysteresis")?,
        ))
    };
    match scheme {
        "none" => Ok(ControllerSpec::None),
        "analog-sensor" => {
            let (low, high, hysteresis) = thresholds()?;
            Ok(ControllerSpec::AnalogThreshold {
                low,
                high,
                hysteresis,
            })
        }
        "full-convolution" => {
            let (low, high, hysteresis) = thresholds()?;
            Ok(ControllerSpec::FullConvolution {
                low,
                high,
                hysteresis,
            })
        }
        "pipeline-damping" => Ok(ControllerSpec::PipelineDamping {
            window: req_usize(json, "window")?,
            max_delta: req_f64(json, "max_delta")?,
        }),
        "wavelet-convolution" => {
            let (low, high, hysteresis) = thresholds()?;
            Ok(ControllerSpec::WaveletThreshold {
                low,
                high,
                hysteresis,
                delay: req_usize(json, "delay")?,
            })
        }
        "biquad-recursive" => {
            let (low, high, hysteresis) = thresholds()?;
            Ok(ControllerSpec::BiquadRecursive {
                low,
                high,
                hysteresis,
                delay: req_usize(json, "delay")?,
            })
        }
        "wavelet-family" => {
            let (low, high, hysteresis) = thresholds()?;
            Ok(ControllerSpec::WaveletFamilyThreshold {
                low,
                high,
                hysteresis,
                delay: req_usize(json, "delay")?,
                family: req_family(json)?,
                boundary: req_boundary(json)?,
            })
        }
        other => Err(format!("unknown controller scheme `{other}`")),
    }
}

/// Encode one cache-warming snapshot entry to wire JSON. The gain grid
/// and PDN constants round-trip bit-exactly (shortest-roundtrip f64
/// rendering), so a warmed cache serves the same bits a local
/// calibration would have produced.
#[must_use]
pub fn snapshot_entry_to_json(entry: &GainSnapshotEntry) -> Json {
    let gains = entry
        .model
        .gain_rows()
        .iter()
        .map(|row| Json::Arr(row.iter().map(|&g| Json::num(g)).collect()))
        .collect();
    Json::obj(vec![
        ("pct_millis", Json::num(entry.pct_millis as f64)),
        ("window", Json::num(entry.window as f64)),
        ("seed_hex", Json::str(seed_to_hex(entry.seed))),
        ("family", Json::str(entry.family.name())),
        ("resistance", Json::num(entry.model.resistance())),
        ("vdd", Json::num(entry.model.vdd())),
        ("gains", Json::Arr(gains)),
    ])
}

/// Decode one cache-warming snapshot entry from wire JSON.
///
/// # Errors
///
/// A human-readable message naming the first offending field.
pub fn snapshot_entry_from_json(json: &Json) -> Result<GainSnapshotEntry, String> {
    let pct_millis = json
        .get("pct_millis")
        .and_then(Json::as_u64)
        .ok_or("snapshot entry is missing integer field `pct_millis`")?;
    let window = req_usize(json, "window")?;
    let seed = seed_from_hex(
        json.get("seed_hex")
            .and_then(Json::as_str)
            .ok_or("snapshot entry is missing string field `seed_hex`")?,
    )?;
    let family = json
        .get("family")
        .and_then(Json::as_str)
        .and_then(WaveletFamily::parse)
        .ok_or("snapshot entry has a missing or unknown `family`")?;
    let resistance = req_f64(json, "resistance")?;
    let vdd = req_f64(json, "vdd")?;
    let rows = json
        .get("gains")
        .and_then(Json::as_arr)
        .ok_or("snapshot entry is missing array field `gains`")?;
    let mut gains = Vec::with_capacity(rows.len());
    for row in rows {
        let row = row
            .as_arr()
            .ok_or("`gains` rows must be arrays of 5 numbers")?;
        if row.len() != 5 {
            return Err("`gains` rows must be arrays of 5 numbers".to_string());
        }
        let mut out = [0.0f64; 5];
        for (slot, v) in out.iter_mut().zip(row) {
            *slot = v.as_f64().ok_or("`gains` rows must hold only numbers")?;
        }
        gains.push(out);
    }
    let model = ScaleGainModel::from_parts(window, gains, resistance, vdd, family)
        .map_err(|e| format!("snapshot entry is not a valid gain model: {e}"))?;
    Ok(GainSnapshotEntry {
        pct_millis,
        window,
        seed,
        family,
        model,
    })
}

impl Request {
    /// The consistent-hash shard key this request routes on, when it
    /// has one. `Characterize` and `SessionOpen` shard on their
    /// calibration key (family, boundary, window, PDN bits — the batch
    /// drain's grouping); `Design` always calibrates in Haar/periodic;
    /// `ClosedLoop` shards on (benchmark, PDN bits) so a benchmark's
    /// baseline cache stays on one worker. `None` means the request is
    /// not shardable: `Ping`/`Stats` are answered by whoever receives
    /// them, session follow-ups are session-affine
    /// ([`RequestBody::session_id`]), and snapshot administration is
    /// addressed to a specific node.
    #[must_use]
    pub fn shard_key(&self) -> Option<u64> {
        match &self.body {
            RequestBody::Characterize(s) => Some(calibration_shard_key(
                s.family.name(),
                s.boundary.name(),
                s.window,
                s.pdn_pct.to_bits(),
            )),
            RequestBody::SessionOpen(s) => Some(calibration_shard_key(
                s.family.name(),
                s.boundary.name(),
                s.window,
                s.pdn_pct.to_bits(),
            )),
            RequestBody::Design(s) => Some(calibration_shard_key(
                WaveletFamily::Haar.name(),
                BoundaryMode::Periodic.name(),
                s.window,
                s.pdn_pct.to_bits(),
            )),
            RequestBody::ClosedLoop(s) => Some(calibration_shard_key(
                "closed_loop",
                s.benchmark.as_str(),
                s.monitor_terms,
                s.pdn_pct.to_bits(),
            )),
            RequestBody::Ping
            | RequestBody::Stats
            | RequestBody::SessionPush { .. }
            | RequestBody::SessionVerdict { .. }
            | RequestBody::SessionClose { .. }
            | RequestBody::SnapshotExport { .. }
            | RequestBody::SnapshotImport { .. } => None,
        }
    }

    /// Encode to the wire JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::num(self.id as f64)),
            ("kind", Json::str(self.body.kind())),
        ];
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::num(ms as f64)));
        }
        let spec = match &self.body {
            RequestBody::Ping | RequestBody::Stats => None,
            RequestBody::Characterize(s) => {
                let mut sp = Vec::new();
                match &s.trace {
                    TraceSource::Inline(samples) => {
                        sp.push((
                            "trace",
                            Json::Arr(samples.iter().map(|&x| Json::num(x)).collect()),
                        ));
                    }
                    TraceSource::Synth {
                        benchmark,
                        seed,
                        warmup,
                        cycles,
                    } => {
                        sp.push((
                            "synth",
                            Json::obj(vec![
                                ("benchmark", Json::str(benchmark.as_str())),
                                ("seed_hex", Json::str(seed_to_hex(*seed))),
                                ("warmup", Json::num(*warmup as f64)),
                                ("cycles", Json::num(*cycles as f64)),
                            ]),
                        ));
                    }
                    TraceSource::Recorded { path } => {
                        sp.push(("recorded", Json::str(path.as_str())));
                    }
                }
                sp.push(("pdn_pct", Json::num(s.pdn_pct)));
                sp.push(("window", Json::num(s.window as f64)));
                sp.push(("threshold", Json::num(s.threshold)));
                sp.push(("significance", Json::num(s.significance)));
                sp.push(("gauss_windows", Json::num(s.gauss_windows as f64)));
                sp.push(("family", Json::str(s.family.name())));
                sp.push(("boundary", Json::str(s.boundary.name())));
                Some(Json::obj(sp))
            }
            RequestBody::ClosedLoop(s) => {
                let mut sp = vec![
                    ("benchmark", Json::str(s.benchmark.as_str())),
                    ("pdn_pct", Json::num(s.pdn_pct)),
                    ("monitor_terms", Json::num(s.monitor_terms as f64)),
                    ("controller", controller_to_json(&s.controller)),
                    ("instructions", Json::num(s.instructions as f64)),
                    ("warmup_cycles", Json::num(s.warmup_cycles as f64)),
                ];
                if let Some(path) = &s.replay {
                    sp.push(("replay", Json::str(path.as_str())));
                }
                Some(Json::obj(sp))
            }
            RequestBody::Design(s) => Some(Json::obj(vec![
                ("pdn_pct", Json::num(s.pdn_pct)),
                ("window", Json::num(s.window as f64)),
                ("terms", Json::num(s.terms as f64)),
                ("i_dev", Json::num(s.i_dev)),
            ])),
            RequestBody::SessionOpen(s) => Some(Json::obj(vec![
                ("pdn_pct", Json::num(s.pdn_pct)),
                ("window", Json::num(s.window as f64)),
                ("threshold", Json::num(s.threshold)),
                ("significance", Json::num(s.significance)),
                ("gauss_windows", Json::num(s.gauss_windows as f64)),
                ("family", Json::str(s.family.name())),
                ("boundary", Json::str(s.boundary.name())),
            ])),
            RequestBody::SessionPush { session, samples } => Some(Json::obj(vec![
                ("session", Json::num(*session as f64)),
                (
                    "samples",
                    Json::Arr(samples.iter().map(|&x| Json::num(x)).collect()),
                ),
            ])),
            RequestBody::SessionVerdict { session } | RequestBody::SessionClose { session } => {
                Some(Json::obj(vec![("session", Json::num(*session as f64))]))
            }
            RequestBody::SnapshotExport { max_entries } => Some(Json::obj(vec![(
                "max_entries",
                Json::num(*max_entries as f64),
            )])),
            RequestBody::SnapshotImport { entries } => Some(Json::obj(vec![(
                "entries",
                Json::Arr(entries.iter().map(snapshot_entry_to_json).collect()),
            )])),
        };
        if let Some(spec) = spec {
            pairs.push(("spec", spec));
        }
        Json::obj(pairs)
    }

    /// Decode from the wire JSON shape.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first offending field.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let id = json
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("request is missing integer field `id`")?;
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("request is missing string field `kind`")?;
        let deadline_ms = match json.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("field `deadline_ms` must be a non-negative integer")?,
            ),
        };
        let spec = json.get("spec");
        let need_spec =
            || -> Result<&Json, String> { spec.ok_or_else(|| format!("`{kind}` needs a `spec`")) };
        let body = match kind {
            "ping" => RequestBody::Ping,
            "stats" => RequestBody::Stats,
            "characterize" => {
                let s = need_spec()?;
                let d = CharacterizeSpec::default();
                let trace = if let Some(arr) = s.get("trace") {
                    let arr = arr.as_arr().ok_or("field `trace` must be an array")?;
                    let mut samples = Vec::with_capacity(arr.len());
                    for v in arr {
                        samples.push(v.as_f64().ok_or("field `trace` must hold only numbers")?);
                    }
                    TraceSource::Inline(samples)
                } else if let Some(sy) = s.get("synth") {
                    let benchmark = sy
                        .get("benchmark")
                        .and_then(Json::as_str)
                        .ok_or("`synth` is missing string field `benchmark`")?
                        .to_string();
                    let seed = match sy.get("seed_hex").and_then(Json::as_str) {
                        Some(hex) => seed_from_hex(hex)?,
                        None => 0xD1D7,
                    };
                    TraceSource::Synth {
                        benchmark,
                        seed,
                        warmup: req_usize(sy, "warmup").unwrap_or(1_000),
                        cycles: req_usize(sy, "cycles").unwrap_or(8_192),
                    }
                } else if let Some(r) = s.get("recorded") {
                    let path = r
                        .as_str()
                        .ok_or("field `recorded` must be a string path")?
                        .to_string();
                    TraceSource::Recorded { path }
                } else {
                    return Err("`characterize` needs `trace`, `synth` or `recorded`".to_string());
                };
                RequestBody::Characterize(CharacterizeSpec {
                    trace,
                    pdn_pct: req_f64(s, "pdn_pct").unwrap_or(d.pdn_pct),
                    window: req_usize(s, "window").unwrap_or(d.window),
                    threshold: req_f64(s, "threshold").unwrap_or(d.threshold),
                    significance: req_f64(s, "significance").unwrap_or(d.significance),
                    gauss_windows: req_usize(s, "gauss_windows").unwrap_or(d.gauss_windows),
                    family: req_family(s)?,
                    boundary: req_boundary(s)?,
                })
            }
            "closed_loop" => {
                let s = need_spec()?;
                RequestBody::ClosedLoop(ClosedLoopSpec {
                    benchmark: s
                        .get("benchmark")
                        .and_then(Json::as_str)
                        .ok_or("`closed_loop` is missing string field `benchmark`")?
                        .to_string(),
                    pdn_pct: req_f64(s, "pdn_pct")?,
                    monitor_terms: req_usize(s, "monitor_terms").unwrap_or(13),
                    controller: controller_from_json(
                        s.get("controller")
                            .ok_or("`closed_loop` needs a `controller`")?,
                    )?,
                    instructions: s
                        .get("instructions")
                        .and_then(Json::as_u64)
                        .ok_or("`closed_loop` is missing integer field `instructions`")?,
                    warmup_cycles: s
                        .get("warmup_cycles")
                        .and_then(Json::as_u64)
                        .ok_or("`closed_loop` is missing integer field `warmup_cycles`")?,
                    replay: match s.get("replay") {
                        None | Some(Json::Null) => None,
                        Some(v) => Some(
                            v.as_str()
                                .ok_or("field `replay` must be a string path")?
                                .to_string(),
                        ),
                    },
                })
            }
            "design" => {
                let s = need_spec()?;
                RequestBody::Design(DesignSpec {
                    pdn_pct: req_f64(s, "pdn_pct")?,
                    window: req_usize(s, "window").unwrap_or(256),
                    terms: req_usize(s, "terms")?,
                    i_dev: req_f64(s, "i_dev").unwrap_or(10.0),
                })
            }
            "session_open" => {
                let s = need_spec()?;
                let d = SessionSpec::default();
                RequestBody::SessionOpen(SessionSpec {
                    pdn_pct: req_f64(s, "pdn_pct").unwrap_or(d.pdn_pct),
                    window: req_usize(s, "window").unwrap_or(d.window),
                    threshold: req_f64(s, "threshold").unwrap_or(d.threshold),
                    significance: req_f64(s, "significance").unwrap_or(d.significance),
                    gauss_windows: req_usize(s, "gauss_windows").unwrap_or(d.gauss_windows),
                    family: req_family(s)?,
                    boundary: req_boundary(s)?,
                })
            }
            "session_push" => {
                let s = need_spec()?;
                let arr = s
                    .get("samples")
                    .and_then(Json::as_arr)
                    .ok_or("`session_push` needs an array field `samples`")?;
                let mut samples = Vec::with_capacity(arr.len());
                for v in arr {
                    samples.push(v.as_f64().ok_or("field `samples` must hold only numbers")?);
                }
                RequestBody::SessionPush {
                    session: req_session(s)?,
                    samples,
                }
            }
            "session_verdict" => RequestBody::SessionVerdict {
                session: req_session(need_spec()?)?,
            },
            "session_close" => RequestBody::SessionClose {
                session: req_session(need_spec()?)?,
            },
            "snapshot_export" => {
                let max_entries = match json.get("spec") {
                    None | Some(Json::Null) => SNAPSHOT_MAX_ENTRIES,
                    Some(s) => req_usize(s, "max_entries").unwrap_or(SNAPSHOT_MAX_ENTRIES),
                };
                RequestBody::SnapshotExport { max_entries }
            }
            "snapshot_import" => {
                let s = need_spec()?;
                let arr = s
                    .get("entries")
                    .and_then(Json::as_arr)
                    .ok_or("`snapshot_import` needs an array field `entries`")?;
                let mut entries = Vec::with_capacity(arr.len());
                for v in arr {
                    entries.push(snapshot_entry_from_json(v)?);
                }
                RequestBody::SnapshotImport { entries }
            }
            other => return Err(format!("unknown request kind `{other}`")),
        };
        Ok(Request {
            id,
            deadline_ms,
            body,
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Machine-readable error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be decoded or named an invalid spec.
    BadRequest,
    /// The request's deadline expired (in queue or mid-simulation).
    DeadlineExceeded,
    /// The handler failed internally (including a caught panic).
    Internal,
    /// The named streaming session does not exist (never opened, timed
    /// out, or already closed). The connection stays usable — this is a
    /// structured answer, not a protocol desync.
    SessionNotFound,
    /// No healthy worker can take the request right now (router-side:
    /// every candidate shard is down, or a session's owning worker was
    /// lost). Retrying later may succeed; the session itself is gone.
    Unavailable,
}

impl ErrorCode {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Internal => "internal",
            ErrorCode::SessionNotFound => "session_not_found",
            ErrorCode::Unavailable => "unavailable",
        }
    }

    /// Parse the wire name.
    #[must_use]
    pub fn parse(s: &str) -> Option<ErrorCode> {
        match s {
            "bad_request" => Some(ErrorCode::BadRequest),
            "deadline_exceeded" => Some(ErrorCode::DeadlineExceeded),
            "internal" => Some(ErrorCode::Internal),
            "session_not_found" => Some(ErrorCode::SessionNotFound),
            "unavailable" => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// The three response shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponsePayload {
    /// Success; `result` is the analysis-specific report.
    Ok {
        /// The request kind this answers.
        kind: String,
        /// Analysis report.
        result: Json,
    },
    /// The admission queue was full; retry after the hinted delay.
    Rejected {
        /// Client backoff hint (ms).
        retry_after_ms: u64,
        /// Queue occupancy at rejection time.
        queue_len: u64,
    },
    /// The request failed.
    Error {
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id (0 when the id could not be decoded).
    pub id: u64,
    /// Outcome.
    pub payload: ResponsePayload,
}

impl Response {
    /// A success response.
    #[must_use]
    pub fn ok(id: u64, kind: &str, result: Json) -> Response {
        Response {
            id,
            payload: ResponsePayload::Ok {
                kind: kind.to_string(),
                result,
            },
        }
    }

    /// A structured overload rejection.
    #[must_use]
    pub fn rejected(id: u64, retry_after_ms: u64, queue_len: u64) -> Response {
        Response {
            id,
            payload: ResponsePayload::Rejected {
                retry_after_ms,
                queue_len,
            },
        }
    }

    /// An error response.
    #[must_use]
    pub fn error(id: u64, code: ErrorCode, message: impl Into<String>) -> Response {
        Response {
            id,
            payload: ResponsePayload::Error {
                code,
                message: message.into(),
            },
        }
    }

    /// Encode to the wire JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("id", Json::num(self.id as f64))];
        match &self.payload {
            ResponsePayload::Ok { kind, result } => {
                pairs.push(("status", Json::str("ok")));
                pairs.push(("kind", Json::str(kind.as_str())));
                pairs.push(("result", result.clone()));
            }
            ResponsePayload::Rejected {
                retry_after_ms,
                queue_len,
            } => {
                pairs.push(("status", Json::str("rejected")));
                pairs.push(("retry_after_ms", Json::num(*retry_after_ms as f64)));
                pairs.push(("queue_len", Json::num(*queue_len as f64)));
            }
            ResponsePayload::Error { code, message } => {
                pairs.push(("status", Json::str("error")));
                pairs.push(("code", Json::str(code.as_str())));
                pairs.push(("message", Json::str(message.as_str())));
            }
        }
        Json::obj(pairs)
    }

    /// Decode from the wire JSON shape.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first offending field.
    pub fn from_json(json: &Json) -> Result<Response, String> {
        let id = json
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("response is missing integer field `id`")?;
        let status = json
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response is missing string field `status`")?;
        let payload = match status {
            "ok" => ResponsePayload::Ok {
                kind: json
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("ok response is missing `kind`")?
                    .to_string(),
                result: json
                    .get("result")
                    .cloned()
                    .ok_or("ok response is missing `result`")?,
            },
            "rejected" => ResponsePayload::Rejected {
                retry_after_ms: json
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .ok_or("rejected response is missing `retry_after_ms`")?,
                queue_len: json.get("queue_len").and_then(Json::as_u64).unwrap_or(0),
            },
            "error" => ResponsePayload::Error {
                code: json
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .ok_or("error response has an unknown `code`")?,
                message: json
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            },
            other => return Err(format!("unknown response status `{other}`")),
        };
        Ok(Response { id, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let json = req.to_json();
        let text = json.render();
        let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(*req, back);
    }

    #[test]
    fn requests_roundtrip_through_wire_json() {
        roundtrip_request(&Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Ping,
        });
        roundtrip_request(&Request {
            id: 2,
            deadline_ms: Some(250),
            body: RequestBody::Stats,
        });
        roundtrip_request(&Request {
            id: 3,
            deadline_ms: Some(5_000),
            body: RequestBody::Characterize(CharacterizeSpec {
                trace: TraceSource::Inline(vec![1.0, 2.5, -0.125, 19.0625]),
                ..CharacterizeSpec::default()
            }),
        });
        roundtrip_request(&Request {
            id: 4,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec::default()),
        });
        roundtrip_request(&Request {
            id: 5,
            deadline_ms: None,
            body: RequestBody::ClosedLoop(ClosedLoopSpec {
                benchmark: "swim".to_string(),
                pdn_pct: 150.0,
                monitor_terms: 13,
                controller: ControllerSpec::WaveletThreshold {
                    low: 0.975,
                    high: 1.025,
                    hysteresis: 0.004,
                    delay: 1,
                },
                instructions: 10_000,
                warmup_cycles: 2_000,
                replay: None,
            }),
        });
        roundtrip_request(&Request {
            id: 13,
            deadline_ms: None,
            body: RequestBody::ClosedLoop(ClosedLoopSpec {
                benchmark: "gzip".to_string(),
                pdn_pct: 150.0,
                monitor_terms: 13,
                controller: ControllerSpec::None,
                instructions: 10_000,
                warmup_cycles: 2_000,
                replay: Some("results/traces/gzip.dtrc".to_string()),
            }),
        });
        roundtrip_request(&Request {
            id: 14,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec {
                trace: TraceSource::Recorded {
                    path: "results/traces/swim.dtrc".to_string(),
                },
                ..CharacterizeSpec::default()
            }),
        });
        roundtrip_request(&Request {
            id: 6,
            deadline_ms: None,
            body: RequestBody::Design(DesignSpec {
                pdn_pct: 125.0,
                window: 256,
                terms: 17,
                i_dev: 10.0,
            }),
        });
    }

    #[test]
    fn session_and_snapshot_requests_roundtrip() {
        roundtrip_request(&Request {
            id: 20,
            deadline_ms: Some(1_000),
            body: RequestBody::SessionOpen(SessionSpec::default()),
        });
        roundtrip_request(&Request {
            id: 21,
            deadline_ms: None,
            body: RequestBody::SessionPush {
                session: 7,
                samples: vec![1.0, -0.5, std::f64::consts::PI, f64::MIN_POSITIVE],
            },
        });
        roundtrip_request(&Request {
            id: 22,
            deadline_ms: None,
            body: RequestBody::SessionVerdict { session: 7 },
        });
        roundtrip_request(&Request {
            id: 23,
            deadline_ms: None,
            body: RequestBody::SessionClose { session: 7 },
        });
        roundtrip_request(&Request {
            id: 24,
            deadline_ms: None,
            body: RequestBody::SnapshotExport { max_entries: 128 },
        });
        // Push with an empty chunk is legal on the wire.
        roundtrip_request(&Request {
            id: 25,
            deadline_ms: None,
            body: RequestBody::SessionPush {
                session: 9,
                samples: Vec::new(),
            },
        });
    }

    #[test]
    fn snapshot_entries_roundtrip_bit_exactly() {
        let pdn = didt_pdn::SecondOrderPdn::from_resonance(100e6, 2.2, 4e-4, 1.0, 3e9).unwrap();
        let model = ScaleGainModel::calibrate(&pdn, 256, 11).unwrap();
        let entry = GainSnapshotEntry {
            pct_millis: 100_000,
            window: 256,
            seed: 11,
            family: WaveletFamily::Haar,
            model,
        };
        let req = Request {
            id: 26,
            deadline_ms: None,
            body: RequestBody::SnapshotImport {
                entries: vec![entry.clone()],
            },
        };
        let back = Request::from_json(&Json::parse(&req.to_json().render()).unwrap()).unwrap();
        match back.body {
            RequestBody::SnapshotImport { entries } => {
                assert_eq!(entries.len(), 1);
                // PartialEq on f64 fields; equality here means every
                // gain bit survived the wire.
                assert_eq!(entries[0], entry);
                for (a, b) in entries[0]
                    .model
                    .gain_rows()
                    .iter()
                    .flatten()
                    .zip(entry.model.gain_rows().iter().flatten())
                {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn shard_keys_group_on_calibration_identity() {
        let characterize = |window: usize, pdn_pct: f64, family: WaveletFamily| Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec {
                window,
                pdn_pct,
                family,
                ..CharacterizeSpec::default()
            }),
        };
        let a = characterize(256, 100.0, WaveletFamily::Haar);
        let b = characterize(256, 100.0, WaveletFamily::Haar);
        assert_eq!(a.shard_key(), b.shard_key());
        // The trace does not participate: two different traces with the
        // same calibration key land on the same shard.
        let mut c = characterize(256, 100.0, WaveletFamily::Haar);
        if let RequestBody::Characterize(s) = &mut c.body {
            s.trace = TraceSource::Inline(vec![1.0, 2.0]);
        }
        assert_eq!(a.shard_key(), c.shard_key());
        // Any key part changing moves the shard.
        assert_ne!(
            a.shard_key(),
            characterize(512, 100.0, WaveletFamily::Haar).shard_key()
        );
        assert_ne!(
            a.shard_key(),
            characterize(256, 150.0, WaveletFamily::Haar).shard_key()
        );
        assert_ne!(
            a.shard_key(),
            characterize(256, 100.0, WaveletFamily::Db4).shard_key()
        );
        // A session opens on the same shard as the matching one-shot.
        let open = Request {
            id: 2,
            deadline_ms: None,
            body: RequestBody::SessionOpen(SessionSpec::default()),
        };
        let oneshot = Request {
            id: 3,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec::default()),
        };
        assert_eq!(open.shard_key(), oneshot.shard_key());
        // Unshardable kinds.
        for body in [
            RequestBody::Ping,
            RequestBody::Stats,
            RequestBody::SessionPush {
                session: 1,
                samples: vec![],
            },
            RequestBody::SessionVerdict { session: 1 },
            RequestBody::SessionClose { session: 1 },
            RequestBody::SnapshotExport { max_entries: 1 },
        ] {
            let r = Request {
                id: 4,
                deadline_ms: None,
                body,
            };
            assert_eq!(r.shard_key(), None, "{} must not shard", r.body.kind());
        }
    }

    #[test]
    fn every_controller_variant_roundtrips() {
        let variants = [
            ControllerSpec::None,
            ControllerSpec::AnalogThreshold {
                low: 0.97,
                high: 1.03,
                hysteresis: 0.002,
            },
            ControllerSpec::FullConvolution {
                low: 0.97,
                high: 1.03,
                hysteresis: 0.002,
            },
            ControllerSpec::PipelineDamping {
                window: 15,
                max_delta: 6.5,
            },
            ControllerSpec::WaveletThreshold {
                low: 0.975,
                high: 1.025,
                hysteresis: 0.004,
                delay: 1,
            },
            ControllerSpec::BiquadRecursive {
                low: 0.975,
                high: 1.025,
                hysteresis: 0.004,
                delay: 2,
            },
            ControllerSpec::WaveletFamilyThreshold {
                low: 0.975,
                high: 1.025,
                hysteresis: 0.004,
                delay: 1,
                family: WaveletFamily::Db4,
                boundary: BoundaryMode::Symmetric,
            },
        ];
        for c in variants {
            let back = controller_from_json(&controller_to_json(&c)).unwrap();
            assert_eq!(c, back);
        }
    }

    #[test]
    fn family_fields_default_to_haar_periodic_when_absent() {
        // A pre-family client's wire shape must keep decoding to the
        // Haar analysis it always meant.
        let legacy = Json::parse(
            r#"{"id": 7, "kind": "characterize", "spec": {
                "synth": {"benchmark": "gzip", "warmup": 100, "cycles": 1024},
                "pdn_pct": 100.0}}"#,
        )
        .unwrap();
        let req = Request::from_json(&legacy).unwrap();
        match req.body {
            RequestBody::Characterize(s) => {
                assert_eq!(s.family, WaveletFamily::Haar);
                assert_eq!(s.boundary, BoundaryMode::Periodic);
            }
            other => panic!("wrong body: {other:?}"),
        }
        // And an unknown family name is a decode error, not a silent Haar.
        let bad = Json::parse(
            r#"{"scheme": "wavelet-family", "low": 0.9, "high": 1.1,
                "hysteresis": 0.001, "delay": 1, "family": "db99",
                "boundary": "periodic"}"#,
        )
        .unwrap();
        assert!(controller_from_json(&bad)
            .unwrap_err()
            .contains("unknown wavelet family"));
    }

    #[test]
    fn characterize_family_fields_roundtrip() {
        roundtrip_request(&Request {
            id: 12,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec {
                family: WaveletFamily::Db3,
                boundary: BoundaryMode::ZeroPad,
                ..CharacterizeSpec::default()
            }),
        });
    }

    #[test]
    fn replay_field_defaults_to_live_simulation_when_absent() {
        // A pre-trace client's closed_loop wire shape must keep meaning
        // the live synthetic run it always meant.
        let legacy = Json::parse(
            r#"{"id": 8, "kind": "closed_loop", "spec": {
                "benchmark": "gzip", "pdn_pct": 150.0,
                "controller": {"scheme": "none"},
                "instructions": 1000, "warmup_cycles": 500}}"#,
        )
        .unwrap();
        let req = Request::from_json(&legacy).unwrap();
        match req.body {
            RequestBody::ClosedLoop(s) => assert_eq!(s.replay, None),
            other => panic!("wrong body: {other:?}"),
        }
        // And a non-string `replay` is a decode error, not a silent live run.
        let bad = Json::parse(
            r#"{"id": 9, "kind": "closed_loop", "spec": {
                "benchmark": "gzip", "pdn_pct": 150.0,
                "controller": {"scheme": "none"},
                "instructions": 1000, "warmup_cycles": 500, "replay": 7}}"#,
        )
        .unwrap();
        assert!(Request::from_json(&bad)
            .unwrap_err()
            .contains("`replay` must be a string"));
    }

    #[test]
    fn responses_roundtrip_through_wire_json() {
        for resp in [
            Response::ok(9, "ping", Json::obj(vec![("version", Json::num(1.0))])),
            Response::rejected(10, 50, 64),
            Response::error(11, ErrorCode::DeadlineExceeded, "too slow"),
            Response::error(0, ErrorCode::BadRequest, "no id"),
        ] {
            let back =
                Response::from_json(&Json::parse(&resp.to_json().render()).unwrap()).unwrap();
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn inline_trace_samples_roundtrip_bit_exactly() {
        let samples = vec![
            std::f64::consts::PI,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -1_234.567_890_123_456_7,
        ];
        let req = Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec {
                trace: TraceSource::Inline(samples.clone()),
                ..CharacterizeSpec::default()
            }),
        };
        let back = Request::from_json(&Json::parse(&req.to_json().render()).unwrap()).unwrap();
        match back.body {
            RequestBody::Characterize(CharacterizeSpec {
                trace: TraceSource::Inline(got),
                ..
            }) => {
                for (a, b) in samples.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let json = Json::obj(vec![("k", Json::num(42.0))]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &json).unwrap();
        write_frame(&mut wire, &json).unwrap();
        // A reader that returns one byte at a time forces maximal
        // fragmentation.
        struct OneByte(std::io::Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut r = FrameReader::new(OneByte(std::io::Cursor::new(wire)));
        let mut no = || false;
        assert_eq!(r.read_frame(1024, &mut no).unwrap(), json);
        assert_eq!(r.read_frame(1024, &mut no).unwrap(), json);
        assert!(matches!(
            r.read_frame(1024, &mut no),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn frame_reader_rejects_oversized_prefix_without_reading_payload() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"whatever");
        let mut r = FrameReader::new(std::io::Cursor::new(wire));
        let mut no = || false;
        match r.read_frame(1024, &mut no) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn frame_reader_reports_truncation() {
        let json = Json::obj(vec![("k", Json::str("truncate me please"))]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &json).unwrap();
        wire.truncate(wire.len() - 5);
        let mut r = FrameReader::new(std::io::Cursor::new(wire));
        let mut no = || false;
        assert!(matches!(
            r.read_frame(1024, &mut no),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_reader_flags_bad_json_payload() {
        let mut wire = Vec::new();
        let payload = b"{not json";
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(payload);
        let mut r = FrameReader::new(std::io::Cursor::new(wire));
        let mut no = || false;
        assert!(matches!(
            r.read_frame(1024, &mut no),
            Err(FrameError::Json(_))
        ));
    }
}
