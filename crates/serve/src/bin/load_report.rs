//! Load-generation harness for didt-serve (the 20th experiment).
//!
//! Phases:
//!
//! 1. **Replay fidelity** — a serial client replays a fixed set of
//!    `ClosedLoop` specs and every numeric field is compared *bitwise*
//!    against the batch runner's answers for the same specs on a fresh
//!    local [`SweepContext`]. This is acceptance criterion (c): the
//!    service path and the batch path are the same computation.
//! 2. **Throughput + cache** — several client threads drive a
//!    repeated-spec request mix; per-request latency lands in a
//!    telemetry histogram (p50/p95/p99 via `Histogram::quantile`), and
//!    the server's own `Stats` response yields the calibration-cache
//!    hit ratio (criterion (a): > 0.9 on a repeated mix).
//! 3. **Overload** — a deliberately tiny server (1 worker, queue depth
//!    2) is hammered by concurrent clients; overload must show up as
//!    structured `Rejected` responses with zero worker panics and zero
//!    error responses (criterion (b)).
//! 4. **Deadline** — a 1 ms deadline on a long simulation must come
//!    back as a clean `deadline_exceeded` error.
//!
//! Results go to `BENCH_pr4.json` (override with `DIDT_BENCH_OUT`; the
//! schema is documented in EXPERIMENTS.md) plus a normal run manifest.
//! Wall-clock numbers live only in the BENCH file, never in manifest
//! goldens.
//!
//! `--smoke` shrinks every phase for CI; `--addr HOST:PORT` points
//! phases 1–2 at an externally started server (the CI smoke job does
//! this to exercise the `serve` binary end to end) — the overload
//! phase always builds its own in-process server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use didt_bench::{ControllerSpec, Experiment, RunParams, SweepContext, SweepPoint};
use didt_serve::{
    CharacterizeSpec, Client, ClientError, ClosedLoopSpec, DesignSpec, ErrorCode, RequestBody,
    ServeConfig, Server, Service, TraceSource,
};
use didt_telemetry::{discover_git_sha, Json, MetricsRegistry};
use didt_uarch::Benchmark;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// The fixed closed-loop spec set used for replay and the repeated mix.
fn replay_specs(smoke: bool) -> Vec<ClosedLoopSpec> {
    let wavelet = ControllerSpec::WaveletThreshold {
        low: 0.975,
        high: 1.025,
        hysteresis: 0.004,
        delay: 1,
    };
    let instructions = if smoke { 2_000 } else { 5_000 };
    let mut specs = Vec::new();
    for (bench, pct) in [("gzip", 150.0), ("swim", 150.0), ("gzip", 125.0)] {
        specs.push(ClosedLoopSpec {
            benchmark: bench.to_string(),
            pdn_pct: pct,
            monitor_terms: 13,
            controller: wavelet,
            instructions,
            warmup_cycles: 1_000,
            replay: None,
        });
    }
    specs.push(ClosedLoopSpec {
        benchmark: "gzip".to_string(),
        pdn_pct: 150.0,
        monitor_terms: 13,
        controller: ControllerSpec::None,
        instructions,
        warmup_cycles: 1_000,
        replay: None,
    });
    specs
}

fn spec_to_point(spec: &ClosedLoopSpec) -> (SweepPoint, RunParams) {
    (
        SweepPoint {
            benchmark: spec
                .benchmark
                .parse::<Benchmark>()
                .expect("known benchmark"),
            pdn_pct: spec.pdn_pct,
            monitor_terms: spec.monitor_terms,
            controller: spec.controller,
        },
        RunParams {
            instructions: spec.instructions,
            warmup_cycles: spec.warmup_cycles,
        },
    )
}

fn leg_bits_match(leg: &Json, want: &didt_core::control::ClosedLoopResult) -> bool {
    let u = |k: &str| leg.get(k).and_then(Json::as_f64).map(|v| v as u64);
    let bits = |k: &str| leg.get(k).and_then(Json::as_f64).map(f64::to_bits);
    u("cycles") == Some(want.cycles)
        && u("instructions") == Some(want.instructions)
        && u("low_emergencies") == Some(want.low_emergencies)
        && u("high_emergencies") == Some(want.high_emergencies)
        && u("stall_cycles") == Some(want.stall_cycles)
        && u("nop_cycles") == Some(want.nop_cycles)
        && u("false_positives") == Some(want.false_positives)
        && bits("v_min") == Some(want.v_min.to_bits())
        && bits("v_max") == Some(want.v_max.to_bits())
        && bits("mean_power") == Some(want.mean_power.to_bits())
}

struct MixCounts {
    ok: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let external_addr = arg_value("--addr");
    let mut exp = Experiment::start("load_report");
    exp.param("smoke", if smoke { 1.0 } else { 0.0 });

    // The main server: external when --addr is given, else in-process.
    let mut own_server: Option<Server> = None;
    let addr = match &external_addr {
        Some(addr) => addr.clone(),
        None => {
            let server = Server::start(ServeConfig::default(), Service::standard()?)?;
            let addr = server.local_addr().to_string();
            own_server = Some(server);
            addr
        }
    };
    println!("load_report driving {addr} (smoke: {smoke})");

    // ------------------------------------------------------------------
    // Phase 1: serial replay fidelity vs the batch runner.
    // ------------------------------------------------------------------
    let t_phase = Instant::now();
    let specs = replay_specs(smoke);
    let local = SweepContext::standard()?;
    let mut client = Client::connect(&addr)?;
    client.ping()?;
    let mut replay_identical = true;
    for spec in &specs {
        let resp = client.closed_loop(spec.clone(), None)?;
        let (point, run) = spec_to_point(spec);
        let want = local.run_point(&point, run)?;
        let ok = resp
            .get("baseline")
            .is_some_and(|leg| leg_bits_match(leg, &want.baseline))
            && resp
                .get("controlled")
                .is_some_and(|leg| leg_bits_match(leg, &want.controlled))
            && resp.get("seed_hex").and_then(Json::as_str)
                == Some(didt_telemetry::seed_to_hex(want.seed).as_str());
        if !ok {
            replay_identical = false;
            eprintln!("replay mismatch on {spec:?}");
        }
    }
    exp.subrun("replay", replay_identical, t_phase.elapsed().as_secs_f64());
    println!(
        "replay: {} specs, bit-identical: {replay_identical}",
        specs.len()
    );

    // ------------------------------------------------------------------
    // Phase 2: repeated-spec mix — throughput, latency, cache hits.
    // ------------------------------------------------------------------
    let t_phase = Instant::now();
    let threads = if smoke { 2 } else { 4 };
    let per_thread = if smoke { 16 } else { 40 };
    let counts = Arc::new(MixCounts {
        ok: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    let latency = MetricsRegistry::global().histogram("load.latency_ns");
    let specs_mix = Arc::new(specs.clone());
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let mut handles = Vec::new();
        for t in 0..threads {
            let addr = addr.clone();
            let counts = Arc::clone(&counts);
            let latency = Arc::clone(&latency);
            let specs_mix = Arc::clone(&specs_mix);
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                for i in 0..per_thread {
                    // Deterministic repeated mix: mostly closed-loop,
                    // with characterize and design sprinkled in. Every
                    // spec repeats across threads and iterations, so
                    // the server's calibration caches must hit.
                    let body = match i % 8 {
                        6 => RequestBody::Characterize(CharacterizeSpec {
                            window: 64,
                            gauss_windows: 20,
                            trace: TraceSource::Synth {
                                benchmark: "gzip".to_string(),
                                seed: 0xD1D7,
                                warmup: 500,
                                cycles: 2_048,
                            },
                            ..CharacterizeSpec::default()
                        }),
                        7 => RequestBody::Design(DesignSpec {
                            pdn_pct: 150.0,
                            window: 256,
                            terms: 13,
                            i_dev: 10.0,
                        }),
                        k => RequestBody::ClosedLoop(specs_mix[(k + t) % specs_mix.len()].clone()),
                    };
                    let t0 = Instant::now();
                    match client.call(body, None) {
                        Ok(resp) => {
                            latency.record_duration(t0.elapsed());
                            use didt_serve::ResponsePayload;
                            match resp.payload {
                                ResponsePayload::Ok { .. } => {
                                    counts.ok.fetch_add(1, Ordering::Relaxed);
                                }
                                ResponsePayload::Rejected { .. } => {
                                    counts.rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                ResponsePayload::Error { .. } => {
                                    counts.errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(e) => return Err(e.to_string()),
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("mix thread panicked")?;
        }
        Ok(())
    })?;
    let mix_secs = t_phase.elapsed().as_secs_f64();
    let total = (threads * per_thread) as u64;
    let throughput = total as f64 / mix_secs;
    let stats = client.stats()?;
    let cache_hit_ratio = stats
        .get("cache_hit_ratio")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    exp.subrun("mix", counts.errors.load(Ordering::Relaxed) == 0, mix_secs);
    exp.param("mix_requests", total as f64);
    exp.param("mix_threads", threads as f64);
    exp.param("cache_hit_ratio", cache_hit_ratio);
    println!(
        "mix: {total} requests on {threads} threads: {throughput:.1} req/s, \
         p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, cache hit ratio {cache_hit_ratio:.4}",
        latency.quantile(0.5) / 1e6,
        latency.quantile(0.95) / 1e6,
        latency.quantile(0.99) / 1e6,
    );

    // ------------------------------------------------------------------
    // Phase 3: overload against a deliberately tiny server.
    // ------------------------------------------------------------------
    let t_phase = Instant::now();
    let tiny = Server::start(
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        },
        Service::standard()?,
    )?;
    let tiny_addr = tiny.local_addr().to_string();
    let storm_threads = if smoke { 6 } else { 8 };
    let storm_per_thread = if smoke { 4 } else { 10 };
    let storm = Arc::new(MixCounts {
        ok: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    let storm_spec = ClosedLoopSpec {
        benchmark: "gzip".to_string(),
        pdn_pct: 150.0,
        monitor_terms: 13,
        controller: ControllerSpec::WaveletThreshold {
            low: 0.975,
            high: 1.025,
            hysteresis: 0.004,
            delay: 1,
        },
        instructions: 2_000,
        warmup_cycles: 1_000,
        replay: None,
    };
    std::thread::scope(|scope| {
        for _ in 0..storm_threads {
            let addr = tiny_addr.clone();
            let storm = Arc::clone(&storm);
            let spec = storm_spec.clone();
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(&addr) else {
                    storm.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                for _ in 0..storm_per_thread {
                    match client.call(RequestBody::ClosedLoop(spec.clone()), None) {
                        Ok(resp) => {
                            use didt_serve::ResponsePayload;
                            match resp.payload {
                                ResponsePayload::Ok { .. } => {
                                    storm.ok.fetch_add(1, Ordering::Relaxed);
                                }
                                ResponsePayload::Rejected { .. } => {
                                    storm.rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                ResponsePayload::Error { .. } => {
                                    storm.errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            storm.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let report = tiny.shutdown();
    let storm_ok = storm.ok.load(Ordering::Relaxed);
    let storm_rejected = storm.rejected.load(Ordering::Relaxed);
    let storm_errors = storm.errors.load(Ordering::Relaxed);
    let storm_total = (storm_threads * storm_per_thread) as u64;
    exp.subrun(
        "overload",
        storm_errors == 0 && report.worker_panics == 0,
        t_phase.elapsed().as_secs_f64(),
    );
    println!(
        "overload (1 worker, queue 2): {storm_total} requests: {storm_ok} ok, \
         {storm_rejected} rejected, {storm_errors} errors, {} worker panics",
        report.worker_panics
    );

    // ------------------------------------------------------------------
    // Phase 4: a 1 ms deadline on a long simulation aborts cleanly.
    // ------------------------------------------------------------------
    let t_phase = Instant::now();
    let deadline_spec = ClosedLoopSpec {
        benchmark: "swim".to_string(),
        pdn_pct: 150.0,
        monitor_terms: 13,
        controller: ControllerSpec::WaveletThreshold {
            low: 0.975,
            high: 1.025,
            hysteresis: 0.004,
            delay: 1,
        },
        instructions: 2_000_000,
        warmup_cycles: 10_000,
        replay: None,
    };
    let deadline_clean = match client.closed_loop(deadline_spec, Some(1)) {
        Err(ClientError::Server {
            code: ErrorCode::DeadlineExceeded,
            ..
        }) => true,
        other => {
            eprintln!("deadline probe returned {other:?}");
            false
        }
    };
    exp.subrun("deadline", deadline_clean, t_phase.elapsed().as_secs_f64());
    println!("deadline: 1 ms budget on a 2M-instruction run aborted cleanly: {deadline_clean}");

    drop(client);
    let main_report = own_server.map(Server::shutdown);

    // ------------------------------------------------------------------
    // BENCH_pr4.json + manifest + acceptance checks.
    // ------------------------------------------------------------------
    let quant = |q: f64| Json::num(latency.quantile(q));
    let bench = Json::obj(vec![
        ("schema", Json::str("didt-serve-bench-v1")),
        ("name", Json::str("load_report")),
        (
            "git_sha",
            Json::str(discover_git_sha().unwrap_or_else(|| "unknown".to_string())),
        ),
        ("smoke", Json::Bool(smoke)),
        (
            "replay",
            Json::obj(vec![
                ("specs", Json::num(specs.len() as f64)),
                ("bit_identical", Json::Bool(replay_identical)),
            ]),
        ),
        (
            "throughput",
            Json::obj(vec![
                ("requests", Json::num(total as f64)),
                ("threads", Json::num(threads as f64)),
                ("ok", Json::num(counts.ok.load(Ordering::Relaxed) as f64)),
                (
                    "rejected",
                    Json::num(counts.rejected.load(Ordering::Relaxed) as f64),
                ),
                (
                    "errors",
                    Json::num(counts.errors.load(Ordering::Relaxed) as f64),
                ),
                ("wall_secs", Json::num(mix_secs)),
                ("requests_per_sec", Json::num(throughput)),
                (
                    "latency_ns",
                    Json::obj(vec![
                        ("p50", quant(0.5)),
                        ("p95", quant(0.95)),
                        ("p99", quant(0.99)),
                        ("count", Json::num(latency.count() as f64)),
                    ]),
                ),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("hit_ratio", Json::num(cache_hit_ratio)),
                (
                    "classes",
                    stats.get("cache").cloned().unwrap_or(Json::Arr(Vec::new())),
                ),
            ]),
        ),
        (
            "overload",
            Json::obj(vec![
                ("workers", Json::num(1.0)),
                ("queue_depth", Json::num(2.0)),
                ("requests", Json::num(storm_total as f64)),
                ("ok", Json::num(storm_ok as f64)),
                ("rejected", Json::num(storm_rejected as f64)),
                ("errors", Json::num(storm_errors as f64)),
                ("worker_panics", Json::num(report.worker_panics as f64)),
                (
                    "rejection_rate",
                    Json::num(storm_rejected as f64 / storm_total as f64),
                ),
            ]),
        ),
        (
            "deadline",
            Json::obj(vec![
                ("requested_ms", Json::num(1.0)),
                ("clean_abort", Json::Bool(deadline_clean)),
            ]),
        ),
    ]);
    let out_path = std::env::var("DIDT_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr4.json".to_string());
    std::fs::write(&out_path, bench.render() + "\n")?;
    println!("wrote {out_path}");

    exp.golden("replay_bit_identical", f64::from(replay_identical));
    exp.finish()?;
    if let Some(r) = main_report {
        println!(
            "main server: {} served, {} rejected, {} panics",
            r.served, r.rejected, r.worker_panics
        );
    }

    // Acceptance criteria (ISSUE 4): (a) hit ratio, (b) structured
    // rejections with zero panics/errors, (c) bit-identical replay.
    let mut failures = Vec::new();
    if !replay_identical {
        failures.push("serial replay is not bit-identical to the batch runner".to_string());
    }
    if cache_hit_ratio <= 0.9 {
        failures.push(format!(
            "cache hit ratio {cache_hit_ratio:.4} <= 0.9 on a repeated-spec mix"
        ));
    }
    if storm_rejected == 0 {
        failures.push("overload produced no structured rejections".to_string());
    }
    if storm_errors != 0 || report.worker_panics != 0 {
        failures.push(format!(
            "overload produced {storm_errors} errors / {} panics",
            report.worker_panics
        ));
    }
    if counts.errors.load(Ordering::Relaxed) != 0 {
        failures.push("request mix produced error responses".to_string());
    }
    if !deadline_clean {
        failures.push("deadline did not abort cleanly".to_string());
    }
    if failures.is_empty() {
        println!("load_report: all acceptance checks passed");
        Ok(())
    } else {
        Err(format!("load_report failures: {failures:?}").into())
    }
}
