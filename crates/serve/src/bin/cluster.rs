//! Run the shard router in front of a worker fleet.
//!
//! ```text
//! cluster --addr HOST:PORT --worker HOST:PORT [--worker HOST:PORT ...]
//!         [--replicas N] [--probe-ms N] [--max-in-flight N] [--no-warm]
//! ```
//!
//! Binds (default `127.0.0.1:7420`), prints one
//! `didt-cluster routing on <addr> across <N> workers` line so scripts
//! can scrape the resolved address, then routes until killed. Workers
//! are ordinary `serve` processes; they need no cluster-specific
//! configuration and cannot tell a router from a direct client.
//!
//! The CI cluster smoke job starts two `serve` workers and this binary,
//! drives them with `storm_report --smoke`, kills one worker mid-storm,
//! and gates on zero lost or duplicated responses.

use didt_serve::{Router, RouterConfig};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn arg_values(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next() {
                out.push(v);
            }
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7420".to_string());
    let workers = arg_values("--worker");
    if workers.is_empty() {
        return Err("cluster needs at least one --worker HOST:PORT".into());
    }
    let mut config = RouterConfig::new(addr, workers);
    if let Some(r) = arg_value("--replicas") {
        config.replicas = r.parse::<usize>()?.max(1);
    }
    if let Some(ms) = arg_value("--probe-ms") {
        config.probe_interval_ms = ms.parse::<u64>()?.max(1);
    }
    if let Some(n) = arg_value("--max-in-flight") {
        config.max_in_flight = n.parse::<u64>()?.max(1);
    }
    if std::env::args().any(|a| a == "--no-warm") {
        config.warm_on_rejoin = false;
    }

    let worker_count = config.workers.len();
    let router = Router::start(config)?;
    println!(
        "didt-cluster routing on {} across {worker_count} workers ({} healthy)",
        router.local_addr(),
        router.healthy_workers()
    );
    // Routing happens on the router's own threads; this thread only
    // keeps the process alive (CI kills the process; graceful drain is
    // exercised by the in-process tests via Router::shutdown).
    loop {
        std::thread::park();
    }
}
