//! Multi-node cluster benchmark: router + worker fleet under a
//! characterization storm, with a mid-storm worker kill.
//!
//! Phases:
//!
//! 1. **Warm** — a dedicated in-process worker pair exercises the
//!    cache-warming snapshot protocol: the peer calibrates two keys,
//!    `warm_worker` copies them into a cold joiner, and the joiner's
//!    answer must be bit-identical to the peer's.
//! 2. **Sessions** — streaming sessions opened *through the router*
//!    push ragged chunks and must verdict bit-identically to a one-shot
//!    `Characterize` of the concatenated samples through the same
//!    router (acceptance criterion: streaming == one-shot).
//! 3. **Storm** — client threads hammer the router with a fixed set of
//!    `K = windows × pdn_pcts` calibration keys. Mid-storm, one worker
//!    dies (in-process: a watcher shuts it down at ~60% of the planned
//!    requests; external: the CI job `kill -9`s it). Every request must
//!    still come back exactly once — zero lost, zero duplicated, zero
//!    error responses — and repeats of a key must render identical
//!    bytes even when failover moved the key to another worker.
//! 4. **Accounting** — per-shard memo-cache hit ratio from each
//!    reachable worker's own `Stats`, fill balance from the
//!    deterministic ring assignment, tail latency from a telemetry
//!    histogram, and the router's forwarded/rerouted/rejected counters.
//!
//! Results go to `BENCH_pr9.json` (override with `DIDT_BENCH_OUT`;
//! schema `didt-bench-v4`, documented in EXPERIMENTS.md) plus a normal
//! run manifest. Wall-clock numbers live only in the BENCH file, never
//! in manifest goldens.
//!
//! Flags: `--smoke` shrinks the fleet and the storm for CI;
//! `--router HOST:PORT` targets an external router (the CI cluster
//! smoke job does this) with `--worker HOST:PORT` (repeatable) naming
//! its workers for stats collection; `--min-storm-ms N` keeps the storm
//! running at least that long so an external kill lands mid-storm;
//! `--expect-failover` makes a detected worker death an acceptance
//! requirement rather than an observation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use didt_bench::{CostClass, Experiment, ExperimentRunner, SchedReport, Scheduler};
use didt_serve::{
    warm_worker, CharacterizeSpec, Client, ClientConfig, ClientError, HashRing, Request,
    RequestBody, ResponsePayload, Router, RouterConfig, ServeConfig, Server, Service, SessionSpec,
    TraceSource, PROTOCOL_VERSION,
};
use didt_telemetry::{discover_git_sha, Json, MetricsRegistry};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn arg_values(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next() {
                out.push(v);
            }
        }
    }
    out
}

/// Ring replica count; must match the router's (`RouterConfig::new`
/// default) for the local fill-share computation to mirror its routing.
const REPLICAS: usize = 64;

/// The storm's calibration key set: every window × impedance pair is
/// one shard key (Haar/periodic family).
const WINDOWS: [usize; 6] = [16, 32, 64, 128, 256, 512];
const PDN_PCTS: [f64; 2] = [100.0, 150.0];

/// Deterministic synthetic current trace for a key. Pure function of
/// (window, pdn_pct, len) so every thread, process, and run issues
/// byte-identical requests.
fn key_trace(window: usize, pdn_pct: f64, len: usize) -> Vec<f64> {
    let w = window as f64;
    (0..len)
        .map(|i| {
            let t = i as f64;
            20.0 + w.sqrt() * (t / 7.3).sin()
                + (pdn_pct / 40.0) * (t / 2.1).sin()
                + 3.0 * (t / (w + 1.0)).cos()
        })
        .collect()
}

/// One storm request: a (driver slot, calibration key) pair. The
/// cost hint is the window length — bigger windows calibrate and
/// render more data — so the steal runner's initial partition puts
/// fewer heavy keys on each deque and thieves absorb the rest.
#[derive(Clone, Copy)]
struct StormItem {
    key: usize,
    window: usize,
    pdn_pct: f64,
}

fn storm_cost(it: &StormItem) -> u64 {
    it.window as u64
}

fn storm_spec(window: usize, pdn_pct: f64) -> CharacterizeSpec {
    CharacterizeSpec {
        trace: TraceSource::Inline(key_trace(window, pdn_pct, 1024)),
        pdn_pct,
        window,
        gauss_windows: 30,
        ..CharacterizeSpec::default()
    }
}

struct StormCounts {
    ok: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    lost: AtomicU64,
    duplicated: AtomicU64,
    divergent: AtomicU64,
    completed: AtomicU64,
}

fn u64_stat(stats: &Json, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        match node.get(key) {
            Some(next) => node = next,
            None => return 0,
        }
    }
    node.as_f64().map_or(0, |v| v as u64)
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let expect_failover = std::env::args().any(|a| a == "--expect-failover");
    let external_router = arg_value("--router");
    let min_storm_ms: u64 = arg_value("--min-storm-ms")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(0);
    let external = external_router.is_some();

    let mut exp = Experiment::start("storm_report");
    exp.param("smoke", if smoke { 1.0 } else { 0.0 });
    exp.param("external", if external { 1.0 } else { 0.0 });

    // ------------------------------------------------------------------
    // Topology: external router + named workers, or an in-process fleet.
    // ------------------------------------------------------------------
    let fleet = if smoke { 2 } else { 3 };
    let mut worker_addrs: Vec<String> = Vec::new();
    // In-process workers live behind Option so the kill watcher can
    // take one out mid-storm.
    let worker_slots: Arc<Mutex<Vec<Option<Server>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut own_router: Option<Router> = None;
    let router_addr = match &external_router {
        Some(addr) => {
            worker_addrs = arg_values("--worker");
            addr.clone()
        }
        None => {
            let mut slots = worker_slots.lock().unwrap();
            for _ in 0..fleet {
                let server = Server::start(
                    ServeConfig {
                        workers: 2,
                        ..ServeConfig::default()
                    },
                    Service::standard()?,
                )?;
                worker_addrs.push(server.local_addr().to_string());
                slots.push(Some(server));
            }
            drop(slots);
            let mut config = RouterConfig::new("127.0.0.1:0".to_string(), worker_addrs.clone());
            // The forward path, not the prober, must discover the
            // mid-storm death: that is what increments `rerouted`.
            config.probe_interval_ms = 60_000;
            config.warm_on_rejoin = false;
            let router = Router::start(config)?;
            let addr = router.local_addr().to_string();
            own_router = Some(router);
            addr
        }
    };
    let workers = if external {
        worker_addrs.len().max(1)
    } else {
        fleet
    };
    exp.param("workers", workers as f64);
    println!(
        "storm_report driving router {router_addr} ({workers} workers, smoke: {smoke}, \
         external: {external})"
    );

    let mut router_client = Client::connect(&router_addr)?;
    let version = router_client.ping()?;
    if version != PROTOCOL_VERSION {
        return Err(
            format!("router speaks protocol {version}, expected {PROTOCOL_VERSION}").into(),
        );
    }

    // ------------------------------------------------------------------
    // Phase 1: cache-warming snapshot between a dedicated worker pair.
    // ------------------------------------------------------------------
    let t_phase = Instant::now();
    let peer = Server::start(ServeConfig::default(), Service::standard()?)?;
    let joiner = Server::start(ServeConfig::default(), Service::standard()?)?;
    // 87.5% impedance: disjoint from the storm's key set, so even when
    // this phase is pointed at shared infrastructure it cannot alias a
    // storm shard.
    let warm_specs = [storm_spec(64, 87.5), storm_spec(128, 87.5)];
    let mut peer_client = Client::connect(peer.local_addr().to_string())?;
    let mut peer_answers = Vec::new();
    for spec in &warm_specs {
        peer_answers.push(peer_client.characterize(spec.clone(), None)?.render());
    }
    let exported = peer_client
        .snapshot_export(didt_serve::SNAPSHOT_MAX_ENTRIES)?
        .len() as u64;
    let installed = warm_worker(
        &peer.local_addr().to_string(),
        &joiner.local_addr().to_string(),
        didt_serve::SNAPSHOT_MAX_ENTRIES,
    )?;
    let mut joiner_client = Client::connect(joiner.local_addr().to_string())?;
    let mut warm_identical = true;
    for (spec, want) in warm_specs.iter().zip(&peer_answers) {
        let got = joiner_client.characterize(spec.clone(), None)?.render();
        if got != *want {
            warm_identical = false;
            eprintln!("warmed joiner diverged from peer on window {}", spec.window);
        }
    }
    // The warmed entries must land as pre-completed memo slots: the
    // joiner answered both keys without a single gain calibration.
    let joiner_stats = joiner_client.stats()?;
    let warmed_as_hits = joiner_stats
        .get("cache")
        .and_then(Json::as_arr)
        .is_some_and(|classes| {
            classes.iter().any(|c| {
                u64_stat(c, &["requests"]) > 0
                    && u64_stat(c, &["computed"]) == 0
                    && c.get("name").and_then(Json::as_str) == Some("gains")
            })
        });
    drop(peer_client);
    drop(joiner_client);
    let _ = peer.shutdown();
    let _ = joiner.shutdown();
    exp.subrun(
        "warm",
        installed > 0 && warm_identical,
        t_phase.elapsed().as_secs_f64(),
    );
    println!(
        "warm: {exported} exported, {installed} installed, bit-identical: {warm_identical}, \
         served from warmed slots: {warmed_as_hits}"
    );

    // ------------------------------------------------------------------
    // Phase 2: streaming sessions through the router, verdicts vs
    // one-shot Characterize over the concatenated samples.
    // ------------------------------------------------------------------
    let t_phase = Instant::now();
    let session_keys: &[(usize, f64)] = if smoke {
        &[(64, 100.0)]
    } else {
        &[(64, 100.0), (128, 150.0)]
    };
    let mut sessions_identical = true;
    for &(window, pct) in session_keys {
        let trace = key_trace(window, pct, 1234);
        let spec = CharacterizeSpec {
            trace: TraceSource::Inline(trace.clone()),
            pdn_pct: pct,
            window,
            gauss_windows: 30,
            ..CharacterizeSpec::default()
        };
        let one_shot = router_client.characterize(spec, None)?;
        let session = router_client.session_open(SessionSpec {
            pdn_pct: pct,
            window,
            gauss_windows: 30,
            ..SessionSpec::default()
        })?;
        // Ragged pushes: chunk sizes deliberately misaligned with the
        // window so frames split mid-window.
        let mut offset = 0usize;
        for chunk in [1usize, 7, 100, 63, window, 500, usize::MAX] {
            let end = trace.len().min(offset.saturating_add(chunk));
            router_client.session_push(session, trace[offset..end].to_vec())?;
            offset = end;
            if offset == trace.len() {
                break;
            }
        }
        let verdict = router_client.session_verdict(session, None)?;
        router_client.session_close(session)?;
        // The verdict carries the router-scoped session id on top of
        // the characterize report; strip it before comparing bytes.
        let stripped = match verdict {
            Json::Obj(pairs) => {
                Json::Obj(pairs.into_iter().filter(|(k, _)| k != "session").collect())
            }
            other => other,
        };
        if stripped.render() != one_shot.render() {
            sessions_identical = false;
            eprintln!("session verdict diverged from one-shot on window {window}");
        }
    }
    exp.subrun(
        "sessions",
        sessions_identical,
        t_phase.elapsed().as_secs_f64(),
    );
    println!(
        "sessions: {} streamed through the router, bit-identical to one-shot: \
         {sessions_identical}",
        session_keys.len()
    );

    // ------------------------------------------------------------------
    // Phase 3: the storm, with a mid-storm worker kill.
    // ------------------------------------------------------------------
    let t_phase = Instant::now();
    let keys: Vec<(usize, f64)> = WINDOWS
        .iter()
        .flat_map(|&w| PDN_PCTS.iter().map(move |&p| (w, p)))
        .collect();
    let shard_keys: Vec<u64> = keys
        .iter()
        .map(|&(w, p)| {
            Request {
                id: 0,
                deadline_ms: None,
                body: RequestBody::Characterize(storm_spec(w, p)),
            }
            .shard_key()
            .expect("characterize always has a shard key")
        })
        .collect();
    let distinct: std::collections::BTreeSet<u64> = shard_keys.iter().copied().collect();
    let collisions = (keys.len() - distinct.len()) as u64;

    let threads = 4usize;
    let min_iters = if smoke { 4usize } else { 6 };
    let planned = (threads * min_iters * keys.len()) as u64;
    let counts = Arc::new(StormCounts {
        ok: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        lost: AtomicU64::new(0),
        duplicated: AtomicU64::new(0),
        divergent: AtomicU64::new(0),
        completed: AtomicU64::new(0),
    });
    let latency = MetricsRegistry::global().histogram("storm.latency_ns");
    // First rendered answer per key; every repeat must match it, even
    // after its shard failed over to another worker.
    let first_renders: Arc<Mutex<Vec<Option<String>>>> =
        Arc::new(Mutex::new(vec![None; keys.len()]));
    let storm_done = Arc::new(AtomicBool::new(false));
    let killed = Arc::new(AtomicBool::new(false));
    println!(
        "storm: driving {} keys x {threads} threads (>= {min_iters} sweeps, >= {min_storm_ms} ms)",
        keys.len()
    );

    // The fleet driver is the work-stealing runner (DESIGN.md §16):
    // each round flattens (driver slot × key) into one item list and
    // the steal core load-balances the heavy window-512 keys across
    // driver workers. Each worker thread lazily opens its own router
    // connection, cached in a thread local for the round.
    let items: Vec<StormItem> = (0..threads)
        .flat_map(|_| {
            keys.iter().enumerate().map(|(ki, &(w, p))| StormItem {
                key: ki,
                window: w,
                pdn_pct: p,
            })
        })
        .collect();
    thread_local! {
        static STORM_CLIENT: std::cell::RefCell<Option<Client>> =
            const { std::cell::RefCell::new(None) };
    }
    let drive_one = |_: usize, it: &StormItem| -> Result<(), String> {
        STORM_CLIENT.with(|slot| {
            let mut slot = slot.borrow_mut();
            if slot.is_none() {
                let mut client = Client::connect(&router_addr).map_err(|e| e.to_string())?;
                client.set_config(ClientConfig::with_retries(4));
                *slot = Some(client);
            }
            let client = slot.as_mut().expect("client installed above");
            let t0 = Instant::now();
            match client.call(
                RequestBody::Characterize(storm_spec(it.window, it.pdn_pct)),
                None,
            ) {
                Ok(resp) => {
                    latency.record_duration(t0.elapsed());
                    match resp.payload {
                        ResponsePayload::Ok { result, .. } => {
                            counts.ok.fetch_add(1, Ordering::Relaxed);
                            let render = result.render();
                            let mut firsts = first_renders.lock().unwrap();
                            match &firsts[it.key] {
                                Some(want) if *want != render => {
                                    counts.divergent.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(_) => {}
                                None => firsts[it.key] = Some(render),
                            }
                        }
                        ResponsePayload::Rejected { .. } => {
                            counts.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        ResponsePayload::Error { .. } => {
                            counts.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // An id mismatch means a duplicated or misrouted
                // answer; anything else is a request lost in
                // transport.
                Err(ClientError::Protocol(_)) => {
                    counts.duplicated.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    counts.lost.fetch_add(1, Ordering::Relaxed);
                }
            }
            counts.completed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    };

    let runner = ExperimentRunner::with_threads(threads).with_scheduler(Scheduler::Steal);
    let mut driver_report = SchedReport::default();
    let mut rounds = 0usize;
    let storm_start = Instant::now();
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        // The kill watcher: once ~60% of the planned requests have
        // completed, shut a worker down under the storm. External runs
        // skip this — the CI job kill -9s a worker process instead.
        if !external {
            let slots = Arc::clone(&worker_slots);
            let counts = Arc::clone(&counts);
            let done = Arc::clone(&storm_done);
            let killed = Arc::clone(&killed);
            let trigger = (planned * 3) / 5;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if counts.completed.load(Ordering::Relaxed) >= trigger {
                        let victim = slots.lock().unwrap()[0].take();
                        if let Some(server) = victim {
                            let _ = server.shutdown();
                            killed.store(true, Ordering::Release);
                        }
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        }
        loop {
            let (results, report) =
                runner.run_costed_reported(&items, CostClass::Hinted(storm_cost), drive_one);
            driver_report.absorb(&report);
            rounds += 1;
            if let Some(err) = results.into_iter().find_map(Result::err) {
                storm_done.store(true, Ordering::Release);
                return Err(err.into());
            }
            if rounds >= min_iters && storm_start.elapsed().as_millis() as u64 >= min_storm_ms {
                storm_done.store(true, Ordering::Release);
                return Ok(());
            }
        }
    })?;
    let storm_secs = t_phase.elapsed().as_secs_f64();
    let issued = counts.completed.load(Ordering::Relaxed);
    let ok = counts.ok.load(Ordering::Relaxed);
    let rejected = counts.rejected.load(Ordering::Relaxed);
    let errors = counts.errors.load(Ordering::Relaxed);
    let lost = counts.lost.load(Ordering::Relaxed);
    let duplicated = counts.duplicated.load(Ordering::Relaxed);
    let divergent = counts.divergent.load(Ordering::Relaxed);
    let throughput = issued as f64 / storm_secs;
    let storm_clean = errors == 0 && lost == 0 && duplicated == 0 && divergent == 0;
    exp.subrun("storm", storm_clean, storm_secs);
    exp.param("storm_requests", issued as f64);
    exp.param("storm_threads", threads as f64);
    exp.scheduler(&driver_report);
    println!(
        "storm: {issued} requests in {storm_secs:.2} s ({throughput:.1} req/s): {ok} ok, \
         {rejected} rejected, {errors} errors, {lost} lost, {duplicated} duplicated, \
         {divergent} divergent"
    );
    println!(
        "driver: {} scheduler, {rounds} rounds, {} chunks, {}/{} steals hit, deque depth {}",
        driver_report.scheduler,
        driver_report.chunks,
        driver_report.steal_hits,
        driver_report.steal_attempts,
        driver_report.deque_max_depth
    );

    // ------------------------------------------------------------------
    // Phase 4: accounting — router counters, per-worker cache ratios,
    // ring fill balance.
    // ------------------------------------------------------------------
    let router_stats = router_client.stats()?;
    let rerouted = u64_stat(&router_stats, &["router", "rerouted"]);
    let forwarded = u64_stat(&router_stats, &["router", "forwarded"]);
    let route_version = u64_stat(&router_stats, &["router", "route_table_version"]);
    let healthy_after = router_stats
        .get("router")
        .and_then(|r| r.get("workers"))
        .and_then(Json::as_arr)
        .map_or(0, |ws| {
            ws.iter()
                .filter(|w| w.get("healthy") == Some(&Json::Bool(true)))
                .count()
        });
    let worker_died = killed.load(Ordering::Acquire) || healthy_after < workers || rerouted > 0;

    let ring = HashRing::new(workers, REPLICAS);
    let mut owned = vec![0usize; workers];
    for &sk in &shard_keys {
        owned[ring.route(sk)] += 1;
    }
    let max_fill_share = owned
        .iter()
        .map(|&c| c as f64 / keys.len() as f64)
        .fold(0.0f64, f64::max);

    let mut per_worker = Vec::new();
    let mut min_hit_ratio = f64::INFINITY;
    let mut reachable = 0usize;
    for addr in &worker_addrs {
        match Client::connect(addr)
            .map_err(ClientError::Io)
            .and_then(|mut c| c.stats())
        {
            Ok(stats) => {
                let served = u64_stat(&stats, &["served"]);
                let hit_ratio = stats
                    .get("cache_hit_ratio")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                min_hit_ratio = min_hit_ratio.min(hit_ratio);
                reachable += 1;
                per_worker.push(Json::obj(vec![
                    ("addr", Json::str(addr.clone())),
                    ("reachable", Json::Bool(true)),
                    ("served", Json::num(served as f64)),
                    ("cache_hit_ratio", Json::num(hit_ratio)),
                ]));
            }
            Err(_) => {
                // The killed worker: unreachable by design.
                per_worker.push(Json::obj(vec![
                    ("addr", Json::str(addr.clone())),
                    ("reachable", Json::Bool(false)),
                ]));
            }
        }
    }
    if !min_hit_ratio.is_finite() {
        min_hit_ratio = 0.0;
    }
    let min_hit_floor = if smoke { 0.85 } else { 0.9 };
    exp.subrun("failover", storm_clean && forwarded > 0, 0.0);
    println!(
        "shards: {} keys, {collisions} collisions, max fill share {max_fill_share:.3}, \
         min worker hit ratio {min_hit_ratio:.4} over {reachable} reachable workers",
        keys.len()
    );
    println!(
        "failover: worker died: {worker_died}, rerouted: {rerouted}, route table v{route_version}, \
         {healthy_after}/{workers} healthy after storm"
    );

    drop(router_client);
    let router_report = own_router.map(Router::shutdown);
    for server in worker_slots.lock().unwrap().drain(..).flatten() {
        let _ = server.shutdown();
    }

    // ------------------------------------------------------------------
    // BENCH_pr9.json + manifest + acceptance checks.
    // ------------------------------------------------------------------
    let quant = |q: f64| Json::num(latency.quantile(q));
    let bench = Json::obj(vec![
        ("schema", Json::str("didt-bench-v4")),
        ("name", Json::str("storm_report")),
        (
            "git_sha",
            Json::str(discover_git_sha().unwrap_or_else(|| "unknown".to_string())),
        ),
        ("smoke", Json::Bool(smoke)),
        (
            "topology",
            Json::obj(vec![
                ("workers", Json::num(workers as f64)),
                ("replicas", Json::num(REPLICAS as f64)),
                ("external", Json::Bool(external)),
            ]),
        ),
        (
            "warm",
            Json::obj(vec![
                ("exported", Json::num(exported as f64)),
                ("installed", Json::num(installed as f64)),
                ("bit_identical", Json::Bool(warm_identical)),
                ("served_from_warmed_slots", Json::Bool(warmed_as_hits)),
            ]),
        ),
        (
            "sessions",
            Json::obj(vec![
                ("count", Json::num(session_keys.len() as f64)),
                ("bit_identical", Json::Bool(sessions_identical)),
            ]),
        ),
        (
            "sharding",
            Json::obj(vec![
                ("keys", Json::num(keys.len() as f64)),
                ("collisions", Json::num(collisions as f64)),
                ("requests", Json::num(issued as f64)),
                ("ok", Json::num(ok as f64)),
                ("rejected", Json::num(rejected as f64)),
                ("errors", Json::num(errors as f64)),
                ("max_fill_share", Json::num(max_fill_share)),
                ("min_shard_hit_ratio", Json::num(min_hit_ratio)),
                ("reachable_workers", Json::num(reachable as f64)),
                ("per_worker", Json::Arr(per_worker)),
                ("wall_secs", Json::num(storm_secs)),
                ("requests_per_sec", Json::num(throughput)),
                (
                    "latency_ns",
                    Json::obj(vec![
                        ("p50", quant(0.5)),
                        ("p95", quant(0.95)),
                        ("p99", quant(0.99)),
                        ("count", Json::num(latency.count() as f64)),
                    ]),
                ),
            ]),
        ),
        (
            "driver",
            Json::obj(vec![
                ("scheduler", Json::str(driver_report.scheduler)),
                ("workers", Json::num(driver_report.workers as f64)),
                ("rounds", Json::num(rounds as f64)),
                ("chunks", Json::num(driver_report.chunks as f64)),
                (
                    "steal_attempts",
                    Json::num(driver_report.steal_attempts as f64),
                ),
                ("steal_hits", Json::num(driver_report.steal_hits as f64)),
                (
                    "deque_max_depth",
                    Json::num(driver_report.deque_max_depth as f64),
                ),
                (
                    "busy_fractions",
                    Json::Arr(
                        driver_report
                            .busy_fractions()
                            .into_iter()
                            .map(Json::num)
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "failover",
            Json::obj(vec![
                ("worker_died", Json::Bool(worker_died)),
                ("expected", Json::Bool(expect_failover || !external)),
                ("rerouted", Json::num(rerouted as f64)),
                ("route_table_version", Json::num(route_version as f64)),
                ("healthy_after", Json::num(healthy_after as f64)),
                ("lost", Json::num(lost as f64)),
                ("duplicated", Json::num(duplicated as f64)),
                ("divergent", Json::num(divergent as f64)),
                ("zero_lost", Json::Bool(lost == 0)),
                ("zero_duplicated", Json::Bool(duplicated == 0)),
            ]),
        ),
    ]);
    let out_path = std::env::var("DIDT_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr9.json".to_string());
    std::fs::write(&out_path, bench.render() + "\n")?;
    println!("wrote {out_path}");

    exp.golden("shard_collisions", collisions as f64);
    exp.golden("sessions_bit_identical", f64::from(sessions_identical));
    exp.golden("storm_zero_lost", f64::from(lost == 0));
    exp.finish()?;
    if let Some(r) = router_report {
        println!(
            "router: {} forwarded, {} rerouted, {} rejected, {} unavailable",
            r.forwarded, r.rerouted, r.rejected, r.unavailable
        );
    }

    // Acceptance criteria (ISSUE 9): distinct shards, nothing lost or
    // duplicated under a mid-storm kill, hot per-shard caches, and
    // streaming verdicts bit-identical to one-shot characterization.
    let mut failures = Vec::new();
    if collisions != 0 {
        failures.push(format!("{collisions} cross-shard key collisions"));
    }
    if !sessions_identical {
        failures.push("streaming session verdicts diverged from one-shot".to_string());
    }
    if installed == 0 || !warm_identical {
        failures.push(format!(
            "cache warming installed {installed} entries, bit-identical: {warm_identical}"
        ));
    }
    if !warmed_as_hits {
        failures.push("warmed joiner recalibrated instead of serving warmed slots".to_string());
    }
    if errors != 0 || lost != 0 || duplicated != 0 || divergent != 0 {
        failures.push(format!(
            "storm saw {errors} errors, {lost} lost, {duplicated} duplicated, \
             {divergent} divergent responses"
        ));
    }
    if ok == 0 {
        failures.push("storm produced no successful responses".to_string());
    }
    if reachable == 0 {
        failures.push("no worker reachable for stats".to_string());
    } else if min_hit_ratio < min_hit_floor {
        failures.push(format!(
            "min per-shard cache hit ratio {min_hit_ratio:.4} < {min_hit_floor}"
        ));
    }
    if max_fill_share > 0.75 {
        failures.push(format!(
            "ring fill imbalance: one worker owns {max_fill_share:.3} of the keys"
        ));
    }
    if !external && rerouted == 0 {
        failures.push("in-process kill produced no forward-path reroutes".to_string());
    }
    if expect_failover && !worker_died {
        failures.push("--expect-failover, but no worker death was observed".to_string());
    }
    if failures.is_empty() {
        println!("storm_report: all acceptance checks passed");
        Ok(())
    } else {
        Err(format!("storm_report failures: {failures:?}").into())
    }
}
