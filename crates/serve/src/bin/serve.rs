//! Run the dI/dt characterization server.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--deadline-ms N]
//! ```
//!
//! Binds (default `127.0.0.1:7411`), prints one
//! `didt-serve listening on <addr>` line so scripts can scrape the
//! resolved address (relevant with port 0), then serves until killed.
//! The CI smoke job starts this binary, drives it with
//! `load_report --smoke --addr`, and tears it down.

use didt_serve::{ServeConfig, Server, Service};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServeConfig {
        addr: arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7411".to_string()),
        ..ServeConfig::default()
    };
    if let Some(w) = arg_value("--workers") {
        config.workers = w.parse::<usize>()?.max(1);
    }
    if let Some(d) = arg_value("--queue-depth") {
        config.queue_depth = d.parse::<usize>()?.max(1);
    }
    if let Some(ms) = arg_value("--deadline-ms") {
        config.default_deadline_ms = Some(ms.parse::<u64>()?);
    }

    let service = Service::standard()?;
    let workers = config.workers;
    let queue_depth = config.queue_depth;
    let server = Server::start(config, service)?;
    println!("didt-serve listening on {}", server.local_addr());
    println!("workers {workers}, queue depth {queue_depth}");
    // Serving happens on the server's own threads; this thread only
    // keeps the process alive. Lifecycle is external (CI kills the
    // process; the admitted-work drain is exercised by the in-process
    // integration tests, which call Server::shutdown directly).
    loop {
        std::thread::park();
    }
}
