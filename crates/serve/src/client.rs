//! Blocking client for the didt-serve protocol.
//!
//! One [`Client`] owns one TCP connection and issues strictly
//! request-then-response calls, so responses can never arrive out of
//! order even though the server's worker pool completes pipelined
//! requests in any order.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use didt_telemetry::Json;

use crate::protocol::{
    write_frame, CharacterizeSpec, ClosedLoopSpec, DesignSpec, ErrorCode, FrameError, FrameReader,
    Request, RequestBody, Response, ResponsePayload, MAX_FRAME_LEN,
};

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Framing/decoding failure.
    Frame(FrameError),
    /// The response was well-formed JSON but not a valid response, or
    /// answered a different request id.
    Protocol(String),
    /// The server shed the request (queue full); retry after the hint.
    Rejected {
        /// Backoff hint (ms).
        retry_after_ms: u64,
    },
    /// The server answered with an error.
    Server {
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected { retry_after_ms } => {
                write!(f, "rejected by server, retry after {retry_after_ms} ms")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({}): {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a didt-serve server.
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect.
    ///
    /// # Errors
    ///
    /// Propagates connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: FrameReader::new(stream),
            next_id: 1,
        })
    }

    /// Issue one request and wait for its response (any status).
    ///
    /// # Errors
    ///
    /// Transport, framing, and response-shape errors; `Rejected` and
    /// `Error` responses are returned as `Ok` — use [`Client::expect_ok`]
    /// or the typed helpers to turn them into [`ClientError`]s.
    pub fn call(
        &mut self,
        body: RequestBody,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms,
            body,
        };
        write_frame(&mut self.writer, &request.to_json())?;
        let mut never = || false;
        let json = self.reader.read_frame(MAX_FRAME_LEN, &mut never)?;
        let response = Response::from_json(&json).map_err(ClientError::Protocol)?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        Ok(response)
    }

    /// Unwrap an `Ok` response's result, mapping `Rejected`/`Error`
    /// payloads to [`ClientError`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] and [`ClientError::Server`].
    pub fn expect_ok(response: Response) -> Result<Json, ClientError> {
        match response.payload {
            ResponsePayload::Ok { result, .. } => Ok(result),
            ResponsePayload::Rejected { retry_after_ms, .. } => {
                Err(ClientError::Rejected { retry_after_ms })
            }
            ResponsePayload::Error { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Liveness check; returns the protocol version.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let result = Self::expect_ok(self.call(RequestBody::Ping, None)?)?;
        result
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("ping result lacks `version`".to_string()))
    }

    /// Server statistics.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::Stats, None)?)
    }

    /// Offline trace characterization.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn characterize(
        &mut self,
        spec: CharacterizeSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::Characterize(spec), deadline_ms)?)
    }

    /// Closed-loop control simulation.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn closed_loop(
        &mut self,
        spec: ClosedLoopSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::ClosedLoop(spec), deadline_ms)?)
    }

    /// Monitor design report.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn design(
        &mut self,
        spec: DesignSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::Design(spec), deadline_ms)?)
    }
}
