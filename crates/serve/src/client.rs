//! Blocking client for the didt-serve protocol.
//!
//! One [`Client`] owns one TCP connection and issues strictly
//! request-then-response calls, so responses can never arrive out of
//! order even though the server's worker pool completes pipelined
//! requests in any order.
//!
//! Overload handling is opt-in: with a [`ClientConfig`] retry budget,
//! `Rejected{retry_after_ms}` answers are absorbed by a deterministic
//! capped-exponential backoff (no jitter — replayable schedules) before
//! surfacing as [`ClientError::Rejected`].

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use didt_bench::GainSnapshotEntry;
use didt_telemetry::Json;

use crate::protocol::{
    snapshot_entry_from_json, write_frame, CharacterizeSpec, ClosedLoopSpec, DesignSpec, ErrorCode,
    FrameError, FrameReader, Request, RequestBody, Response, ResponsePayload, SessionSpec,
    MAX_FRAME_LEN,
};

/// Client-side retry policy for `Rejected` (overload) responses.
///
/// The schedule is deterministic — no jitter — so a replayed workload
/// produces a replayable retry trace: attempt `k` (0-based) sleeps
/// `max(server_hint, base_ms << k)` capped at `cap_ms`. The default
/// config never retries, preserving the pre-config behavior where every
/// rejection surfaces immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Retries after the first rejection (0 = surface immediately).
    pub max_retries: u32,
    /// First retry delay (doubles each attempt).
    pub backoff_base_ms: u64,
    /// Upper bound on any single delay.
    pub backoff_cap_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 0,
            backoff_base_ms: 25,
            backoff_cap_ms: 1_000,
        }
    }
}

impl ClientConfig {
    /// A config that retries overload up to `max_retries` times with
    /// the default backoff curve.
    #[must_use]
    pub fn with_retries(max_retries: u32) -> Self {
        ClientConfig {
            max_retries,
            ..ClientConfig::default()
        }
    }

    /// The deterministic delay before retry attempt `attempt`
    /// (0-based), honoring the server's `retry_after_ms` hint as a
    /// floor and `backoff_cap_ms` as a ceiling.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32, server_hint_ms: u64) -> u64 {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        exp.max(server_hint_ms).min(self.backoff_cap_ms)
    }
}

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Framing/decoding failure.
    Frame(FrameError),
    /// The response was well-formed JSON but not a valid response, or
    /// answered a different request id.
    Protocol(String),
    /// The server shed the request (queue full); retry after the hint.
    Rejected {
        /// Backoff hint (ms).
        retry_after_ms: u64,
    },
    /// The server answered with an error.
    Server {
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected { retry_after_ms } => {
                write!(f, "rejected by server, retry after {retry_after_ms} ms")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({}): {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a didt-serve server.
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    next_id: u64,
    config: ClientConfig,
    retries: u64,
}

impl Client {
    /// Connect with the default (no-retry) config.
    ///
    /// # Errors
    ///
    /// Propagates connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with an explicit retry/backoff config.
    ///
    /// # Errors
    ///
    /// Propagates connect failure.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: FrameReader::new(stream),
            next_id: 1,
            config,
            retries: 0,
        })
    }

    /// Replace the retry/backoff config.
    pub fn set_config(&mut self, config: ClientConfig) {
        self.config = config;
    }

    /// Overload retries this connection has performed (absorbed
    /// `Rejected` answers that were eventually resolved or re-issued).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Issue one request and wait for its response (any status).
    ///
    /// With a retry budget ([`ClientConfig::max_retries`] > 0),
    /// `Rejected` responses are retried on the deterministic backoff
    /// schedule; the last rejection is returned as-is once the budget
    /// is exhausted. `Error` responses are never retried.
    ///
    /// # Errors
    ///
    /// Transport, framing, and response-shape errors; `Rejected` and
    /// `Error` responses are returned as `Ok` — use [`Client::expect_ok`]
    /// or the typed helpers to turn them into [`ClientError`]s.
    pub fn call(
        &mut self,
        body: RequestBody,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let response = self.call_once(&body, deadline_ms)?;
            let retry_after_ms = match &response.payload {
                ResponsePayload::Rejected { retry_after_ms, .. }
                    if attempt < self.config.max_retries =>
                {
                    *retry_after_ms
                }
                _ => return Ok(response),
            };
            let delay = self.config.backoff_ms(attempt, retry_after_ms);
            std::thread::sleep(Duration::from_millis(delay));
            self.retries += 1;
            attempt += 1;
        }
    }

    fn call_once(
        &mut self,
        body: &RequestBody,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms,
            body: body.clone(),
        };
        write_frame(&mut self.writer, &request.to_json())?;
        let mut never = || false;
        let json = self.reader.read_frame(MAX_FRAME_LEN, &mut never)?;
        let response = Response::from_json(&json).map_err(ClientError::Protocol)?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        Ok(response)
    }

    /// Unwrap an `Ok` response's result, mapping `Rejected`/`Error`
    /// payloads to [`ClientError`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] and [`ClientError::Server`].
    pub fn expect_ok(response: Response) -> Result<Json, ClientError> {
        match response.payload {
            ResponsePayload::Ok { result, .. } => Ok(result),
            ResponsePayload::Rejected { retry_after_ms, .. } => {
                Err(ClientError::Rejected { retry_after_ms })
            }
            ResponsePayload::Error { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Liveness check; returns the protocol version.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let result = Self::expect_ok(self.call(RequestBody::Ping, None)?)?;
        result
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("ping result lacks `version`".to_string()))
    }

    /// Server statistics.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::Stats, None)?)
    }

    /// Offline trace characterization.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn characterize(
        &mut self,
        spec: CharacterizeSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::Characterize(spec), deadline_ms)?)
    }

    /// Closed-loop control simulation.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn closed_loop(
        &mut self,
        spec: ClosedLoopSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::ClosedLoop(spec), deadline_ms)?)
    }

    /// Monitor design report.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn design(
        &mut self,
        spec: DesignSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::Design(spec), deadline_ms)?)
    }

    /// Open a streaming characterization session; returns its id.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn session_open(&mut self, spec: SessionSpec) -> Result<u64, ClientError> {
        let result = Self::expect_ok(self.call(RequestBody::SessionOpen(spec), None)?)?;
        result
            .get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("session_open result lacks `session`".to_string()))
    }

    /// Append samples to an open session.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn session_push(&mut self, session: u64, samples: Vec<f64>) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::SessionPush { session, samples }, None)?)
    }

    /// Incremental verdict over everything pushed so far.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn session_verdict(
        &mut self,
        session: u64,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::SessionVerdict { session }, deadline_ms)?)
    }

    /// Close a session.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn session_close(&mut self, session: u64) -> Result<Json, ClientError> {
        Self::expect_ok(self.call(RequestBody::SessionClose { session }, None)?)
    }

    /// Pull up to `max_entries` completed gain calibrations from the
    /// peer's memo caches (the exporter half of cache warming).
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn snapshot_export(
        &mut self,
        max_entries: usize,
    ) -> Result<Vec<GainSnapshotEntry>, ClientError> {
        let result =
            Self::expect_ok(self.call(RequestBody::SnapshotExport { max_entries }, None)?)?;
        let arr = result
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("snapshot result lacks `entries`".to_string()))?;
        arr.iter()
            .map(|e| snapshot_entry_from_json(e).map_err(ClientError::Protocol))
            .collect()
    }

    /// Install peer-exported calibrations into the server's caches (the
    /// importer half of cache warming). Returns the count installed.
    ///
    /// # Errors
    ///
    /// All [`ClientError`] variants.
    pub fn snapshot_import(&mut self, entries: Vec<GainSnapshotEntry>) -> Result<u64, ClientError> {
        let result = Self::expect_ok(self.call(RequestBody::SnapshotImport { entries }, None)?)?;
        result
            .get("installed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("snapshot result lacks `installed`".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_hint_floored() {
        let cfg = ClientConfig {
            max_retries: 8,
            backoff_base_ms: 25,
            backoff_cap_ms: 400,
        };
        // Pure exponential when the hint is below the curve.
        assert_eq!(cfg.backoff_ms(0, 0), 25);
        assert_eq!(cfg.backoff_ms(1, 0), 50);
        assert_eq!(cfg.backoff_ms(2, 0), 100);
        assert_eq!(cfg.backoff_ms(3, 0), 200);
        // Capped from attempt 4 on.
        assert_eq!(cfg.backoff_ms(4, 0), 400);
        assert_eq!(cfg.backoff_ms(63, 0), 400);
        assert_eq!(cfg.backoff_ms(64, 0), 400, "shift overflow must cap");
        // The server hint floors early attempts but never beats the cap.
        assert_eq!(cfg.backoff_ms(0, 60), 60);
        assert_eq!(cfg.backoff_ms(2, 60), 100);
        assert_eq!(cfg.backoff_ms(0, 10_000), 400);
        // Identical inputs, identical schedule (no jitter).
        let a: Vec<u64> = (0..6).map(|k| cfg.backoff_ms(k, 50)).collect();
        let b: Vec<u64> = (0..6).map(|k| cfg.backoff_ms(k, 50)).collect();
        assert_eq!(a, b);
        // The default config never retries.
        assert_eq!(ClientConfig::default().max_retries, 0);
    }
}
