//! Consistent-hash ring over worker indices.
//!
//! Each worker owns `replicas` virtual nodes placed by a full-avalanche
//! 64-bit mix (splitmix64's finalizer) on the `u64` key space; a shard
//! key routes to the first virtual node at or clockwise after it.
//! Virtual nodes smooth the per-worker share of the key space, and
//! consistency means a worker joining or leaving only moves the keys
//! adjacent to its own virtual nodes — every other shard's memo cache
//! stays where it was.

/// A fixed-membership consistent-hash ring. Health is intentionally
/// *not* stored here: the ring is immutable after construction, and
/// callers pass a liveness predicate to [`HashRing::route_healthy`] so
/// a worker flapping up and down never moves keys between healthy
/// workers.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, worker)` pairs — the ring.
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl HashRing {
    /// A ring of `workers` members with `replicas` virtual nodes each.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `replicas` is zero — an empty ring has
    /// nowhere to route.
    #[must_use]
    pub fn new(workers: usize, replicas: usize) -> Self {
        assert!(workers > 0, "ring needs at least one worker");
        assert!(replicas > 0, "ring needs at least one replica");
        let mut points = Vec::with_capacity(workers * replicas);
        for worker in 0..workers {
            for replica in 0..replicas {
                let h = mix64(((worker as u64) << 32) | replica as u64);
                points.push((h, worker));
            }
        }
        points.sort_unstable();
        HashRing { points, workers }
    }

    /// Number of member workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker owning `key`, ignoring health.
    #[must_use]
    pub fn route(&self, key: u64) -> usize {
        let start = self.points.partition_point(|&(p, _)| p < key);
        self.points[start % self.points.len()].1
    }

    /// The first healthy worker at or clockwise after `key`: the owner
    /// when it is healthy, otherwise the failover target. Returns
    /// `None` when no worker satisfies `healthy`. Walking the ring (not
    /// the worker list) keeps failover assignments as consistent as the
    /// primary ones.
    #[must_use]
    pub fn route_healthy(&self, key: u64, healthy: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.points.partition_point(|&(p, _)| p < key);
        let n = self.points.len();
        let mut tried = 0usize;
        for i in 0..n {
            let (_, worker) = self.points[(start + i) % n];
            if healthy(worker) {
                return Some(worker);
            }
            // Every worker appears `replicas` times; bail once we have
            // provably consulted all of them.
            tried += 1;
            if tried >= n {
                break;
            }
        }
        None
    }
}

/// splitmix64's finalizer: a bijective full-avalanche mix, so vnode
/// points spread uniformly even though (worker, replica) inputs are
/// tiny consecutive integers.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(3, 64);
        for key in (0..10_000u64).map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            let w = ring.route(key);
            assert!(w < 3);
            assert_eq!(w, ring.route(key), "route must be stable");
            assert_eq!(ring.clone().route(key), w, "route must survive clone");
        }
    }

    #[test]
    fn virtual_nodes_balance_the_key_space() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for key in (0..40_000u64).map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            counts[ring.route(key)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / 40_000.0;
            assert!(
                (0.12..=0.40).contains(&share),
                "worker {i} owns {share:.3} of the key space"
            );
        }
    }

    #[test]
    fn failover_only_moves_the_dead_workers_keys() {
        let ring = HashRing::new(3, 64);
        let keys: Vec<u64> = (0..5_000u64)
            .map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for &key in &keys {
            let primary = ring.route(key);
            let dead = (primary + 1) % 3;
            // A different worker dying must not move this key.
            let with_dead = ring.route_healthy(key, |w| w != dead).unwrap();
            assert_eq!(with_dead, primary, "unrelated death moved key {key:#x}");
            // The owner dying moves it to some other healthy worker.
            let failed_over = ring.route_healthy(key, |w| w != primary).unwrap();
            assert_ne!(failed_over, primary);
        }
    }

    #[test]
    fn route_healthy_exhausts_to_none() {
        let ring = HashRing::new(2, 8);
        assert_eq!(ring.route_healthy(42, |_| false), None);
        assert_eq!(ring.route_healthy(42, |w| w == 1), Some(1));
    }
}
