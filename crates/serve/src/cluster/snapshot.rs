//! Cache warming: copy completed gain calibrations between workers.
//!
//! A worker joining (or rejoining) the ring starts with cold memo
//! caches, so its first request per shard would pay a full gain
//! calibration that some peer already did. [`warm_worker`] closes that
//! gap before the router routes traffic to the joiner: it pulls up to
//! `max_entries` completed calibrations from a healthy peer
//! (`snapshot_export`) and installs them into the joiner
//! (`snapshot_import`). Installed entries are bit-exact copies — the
//! wire codec round-trips every gain bit — and land as *pre-completed*
//! memo slots, so the joiner's first request per warmed key counts as a
//! cache hit, exactly as if it had calibrated locally.

use crate::client::{Client, ClientError};

/// Pull hot gain calibrations from `peer` and install them into
/// `joiner`. Returns the number of entries the joiner actually
/// installed (entries it already had, or lost a fill race for, are
/// skipped on the joiner and not counted).
///
/// Both addresses are ordinary worker servers; no router involvement.
/// An empty peer cache is not an error — the joiner simply starts cold.
///
/// # Errors
///
/// Connection, transport, and protocol failures on either leg.
pub fn warm_worker(peer: &str, joiner: &str, max_entries: usize) -> Result<u64, ClientError> {
    let mut exporter = Client::connect(peer)?;
    let entries = exporter.snapshot_export(max_entries)?;
    if entries.is_empty() {
        return Ok(0);
    }
    let mut importer = Client::connect(joiner)?;
    importer.snapshot_import(entries)
}
