//! The router: consistent-hash sharding front for a worker fleet.
//!
//! ```text
//!  clients ──► router accept ──► connection threads (1/conn)
//!                                     │ shard_key() → ring → worker
//!                                     ▼
//!                         worker conn pools (per worker)
//!                                     │        ▲
//!                                     ▼        │ health probes,
//!                               worker servers │ cache warming
//! ```
//!
//! Design points:
//!
//! * **Sharding follows the calibration key.** A request's
//!   [`crate::protocol::Request::shard_key`] — FNV-1a over (family,
//!   boundary, window, PDN bits), the same identity the worker's batch
//!   drain groups on — picks its worker on a consistent-hash ring
//!   ([`super::HashRing`]). Same key, same worker: each worker's memo
//!   caches stay hot and pairwise disjoint.
//! * **Sessions are affine.** `SessionOpen` shards like the matching
//!   one-shot `Characterize`; the router records which worker owns the
//!   session, rewrites session ids (router-scoped ids outlive worker
//!   restarts of *other* workers), and pins every follow-up to the
//!   owner. A follow-up for a dead owner answers `unavailable` — the
//!   streaming state died with the worker, and silently re-opening
//!   elsewhere would break the bit-identity contract.
//! * **Failover re-routes, rejection stays bounded.** A forward that
//!   fails at the transport level marks the worker down, bumps the
//!   route-table version, and walks the ring to the next healthy
//!   worker (`serve.router.rerouted` counts the hops). Per-worker
//!   in-flight is capped; a saturated worker answers a structured
//!   `Rejected` with a retry hint instead of spilling to a cold shard.
//! * **Joining workers are warmed first.** The health prober notices a
//!   down→up transition, copies hot gain calibrations from a healthy
//!   peer ([`super::warm_worker`]), and only then re-enables the
//!   worker — its first routed request per warmed shard is a cache hit.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use didt_telemetry::{Json, MetricsRegistry};

use super::ring::HashRing;
use super::snapshot::warm_worker;
use crate::protocol::{
    write_frame, ErrorCode, FrameError, FrameReader, Request, RequestBody, Response,
    ResponsePayload, MAX_FRAME_LEN, PROTOCOL_VERSION, SNAPSHOT_MAX_ENTRIES,
};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker addresses; ring membership is fixed for the router's
    /// lifetime (health toggles, membership does not).
    pub workers: Vec<String>,
    /// Virtual nodes per worker on the ring.
    pub replicas: usize,
    /// Health probe cadence.
    pub probe_interval_ms: u64,
    /// Concurrent forwards allowed per worker before the router answers
    /// `Rejected` (the router-side queue-depth bound).
    pub max_in_flight: u64,
    /// Backoff hint sent with router-side rejections.
    pub retry_after_ms: u64,
    /// Give up on a single forward after this long and treat the worker
    /// as dead (covers a worker wedged mid-request without a deadline).
    pub forward_timeout_ms: u64,
    /// Largest accepted frame payload (client- and worker-side).
    pub max_frame_len: usize,
    /// Warm a rejoining worker's caches from a healthy peer before
    /// routing traffic to it.
    pub warm_on_rejoin: bool,
}

impl RouterConfig {
    /// A config for `addr` fronting `workers` with the defaults:
    /// 64 replicas, 250 ms probes, 32 in-flight per worker, 50 ms retry
    /// hint, 120 s forward timeout, warming on rejoin.
    #[must_use]
    pub fn new(addr: impl Into<String>, workers: Vec<String>) -> Self {
        RouterConfig {
            addr: addr.into(),
            workers,
            replicas: 64,
            probe_interval_ms: 250,
            max_in_flight: 32,
            retry_after_ms: 50,
            forward_timeout_ms: 120_000,
            max_frame_len: MAX_FRAME_LEN,
            warm_on_rejoin: true,
        }
    }
}

/// How often blocked reads wake up to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Idle worker connections kept per worker.
const POOL_MAX: usize = 8;

/// Wall-clock budget for one health probe round trip.
const PROBE_TIMEOUT: Duration = Duration::from_millis(1_000);

/// One pooled connection to a worker: exclusive use between checkout
/// and return, so the strict request→response discipline holds.
struct WorkerConn {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
}

/// Router-side view of one worker.
struct WorkerSlot {
    addr: String,
    healthy: AtomicBool,
    in_flight: AtomicU64,
    pool: Mutex<Vec<WorkerConn>>,
}

/// Where an open streaming session lives.
struct SessionRoute {
    worker: usize,
    remote: u64,
}

#[derive(Default)]
struct RouterStats {
    forwarded: AtomicU64,
    rerouted: AtomicU64,
    rejected: AtomicU64,
    unavailable: AtomicU64,
    sessions_opened: AtomicU64,
    warmed: AtomicU64,
    route_version: AtomicU64,
}

struct Shared {
    config: RouterConfig,
    ring: HashRing,
    slots: Vec<WorkerSlot>,
    sessions: Mutex<HashMap<u64, SessionRoute>>,
    next_session: AtomicU64,
    stats: RouterStats,
    shutdown: AtomicBool,
}

/// Final counters returned by [`Router::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterReport {
    /// Requests forwarded to workers (answers of any status).
    pub forwarded: u64,
    /// Failover hops: forwards re-routed past a dead worker.
    pub rerouted: u64,
    /// Router-side overload rejections (in-flight cap).
    pub rejected: u64,
    /// Requests answered `unavailable` (no healthy worker / lost
    /// session owner).
    pub unavailable: u64,
    /// Streaming sessions opened through the router.
    pub sessions_opened: u64,
    /// Rejoining workers warmed from a peer before re-enabling.
    pub warmed: u64,
}

/// A running shard router.
pub struct Router {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Router {
    /// Bind, probe the fleet once, and start accepting.
    ///
    /// Workers that fail the initial probe start unhealthy; the prober
    /// brings them in (and warms them) when they come up.
    ///
    /// # Errors
    ///
    /// Propagates bind failure, and rejects an empty worker list.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        if config.workers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one worker address",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let slots = config
            .workers
            .iter()
            .map(|addr| WorkerSlot {
                addr: addr.clone(),
                healthy: AtomicBool::new(false),
                in_flight: AtomicU64::new(0),
                pool: Mutex::new(Vec::new()),
            })
            .collect();
        let shared = Arc::new(Shared {
            ring: HashRing::new(config.workers.len(), config.replicas),
            slots,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            stats: RouterStats::default(),
            shutdown: AtomicBool::new(false),
            config,
        });

        // Initial synchronous probe round: a cold cluster start has
        // nothing to warm, so up-transitions here skip the snapshot.
        for w in 0..shared.slots.len() {
            let up = probe_worker(&shared, w);
            shared.slots[w].healthy.store(up, Ordering::SeqCst);
        }
        shared.stats.route_version.fetch_add(1, Ordering::Relaxed);

        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("didt-router-probe".to_string())
                .spawn(move || prober_loop(&shared))
                .expect("spawn prober")
        };
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("didt-router-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn accept loop")
        };
        Ok(Router {
            shared,
            local_addr,
            accept: Some(accept),
            prober: Some(prober),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Workers currently marked healthy.
    #[must_use]
    pub fn healthy_workers(&self) -> usize {
        self.shared
            .slots
            .iter()
            .filter(|s| s.healthy.load(Ordering::SeqCst))
            .count()
    }

    /// Stop accepting, let in-flight forwards finish, join every
    /// thread. Workers are not touched — they are independent
    /// processes.
    #[must_use]
    pub fn shutdown(mut self) -> RouterReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns poisoned"));
        for handle in conns {
            let _ = handle.join();
        }
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
        let stats = &self.shared.stats;
        RouterReport {
            forwarded: stats.forwarded.load(Ordering::Relaxed),
            rerouted: stats.rerouted.load(Ordering::Relaxed),
            rejected: stats.rejected.load(Ordering::Relaxed),
            unavailable: stats.unavailable.load(Ordering::Relaxed),
            sessions_opened: stats.sessions_opened.load(Ordering::Relaxed),
            warmed: stats.warmed.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Accept / connection handling (mirrors the worker server's front)
// ---------------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("didt-router-conn".to_string())
            .spawn(move || connection_loop(&shared, stream));
        if let Ok(handle) = handle {
            conns.lock().expect("conns poisoned").push(handle);
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(stream);
    loop {
        let mut should_abort = || shared.shutdown.load(Ordering::SeqCst);
        match reader.read_frame(shared.config.max_frame_len, &mut should_abort) {
            Ok(json) => {
                let response = match Request::from_json(&json) {
                    Ok(request) => handle_request(shared, &request),
                    Err(message) => {
                        let id = json.get("id").and_then(Json::as_u64).unwrap_or(0);
                        Response::error(id, ErrorCode::BadRequest, message)
                    }
                };
                if write_frame(&mut writer, &response.to_json()).is_err() {
                    break;
                }
            }
            Err(FrameError::Json(e)) => {
                let resp = Response::error(0, ErrorCode::BadRequest, format!("bad payload: {e}"));
                if write_frame(&mut writer, &resp.to_json()).is_err() {
                    break;
                }
            }
            Err(FrameError::TooLarge { len, max }) => {
                let resp = Response::error(
                    0,
                    ErrorCode::BadRequest,
                    format!("frame of {len} bytes exceeds limit of {max}"),
                );
                let _ = write_frame(&mut writer, &resp.to_json());
                break;
            }
            Err(
                FrameError::Truncated { .. }
                | FrameError::Closed
                | FrameError::Aborted
                | FrameError::Io(_),
            ) => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Request routing
// ---------------------------------------------------------------------------

fn handle_request(shared: &Arc<Shared>, request: &Request) -> Response {
    match &request.body {
        RequestBody::Ping => Response::ok(
            request.id,
            "ping",
            Json::obj(vec![
                ("version", Json::num(PROTOCOL_VERSION as f64)),
                ("role", Json::str("router")),
                ("workers", Json::num(shared.slots.len() as f64)),
            ]),
        ),
        RequestBody::Stats => Response::ok(request.id, "stats", router_stats(shared)),
        // Snapshot administration addresses one node's cache; routing
        // it through a shard hash would warm an arbitrary worker.
        RequestBody::SnapshotExport { .. } | RequestBody::SnapshotImport { .. } => Response::error(
            request.id,
            ErrorCode::BadRequest,
            "snapshot administration is node-local; connect to a worker directly",
        ),
        _ => {
            if let Some(session) = request.body.session_id() {
                forward_session_follow_up(shared, request, session)
            } else if let Some(key) = request.shard_key() {
                forward_sharded(shared, request, key)
            } else {
                // Every kind is either local, session-affine, or
                // shard-keyed; a new kind falling through is a bug.
                Response::error(
                    request.id,
                    ErrorCode::Internal,
                    format!("kind `{}` has no route", request.body.kind()),
                )
            }
        }
    }
}

/// Route a shard-keyed request, failing over past dead workers.
fn forward_sharded(shared: &Arc<Shared>, request: &Request, key: u64) -> Response {
    let metrics = MetricsRegistry::global();
    let mut attempted = vec![false; shared.slots.len()];
    let mut hops = 0u64;
    loop {
        let Some(w) = shared.ring.route_healthy(key, |i| {
            !attempted[i] && shared.slots[i].healthy.load(Ordering::SeqCst)
        }) else {
            shared.stats.unavailable.fetch_add(1, Ordering::Relaxed);
            return Response::error(
                request.id,
                ErrorCode::Unavailable,
                "no healthy worker for this shard",
            );
        };
        attempted[w] = true;
        let slot = &shared.slots[w];
        if slot.in_flight.load(Ordering::SeqCst) >= shared.config.max_in_flight {
            // The owner is saturated. Rejecting (with a retry hint)
            // keeps the shard's cache affinity; spilling to another
            // worker would trade a short wait for a cold calibration.
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            metrics.counter("serve.router.rejected").incr();
            return Response::rejected(
                request.id,
                shared.config.retry_after_ms,
                slot.in_flight.load(Ordering::SeqCst),
            );
        }
        match forward_once(shared, w, request) {
            Ok(response) => {
                shared.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                metrics.counter("serve.router.forwarded").incr();
                if hops > 0 {
                    shared.stats.rerouted.fetch_add(hops, Ordering::Relaxed);
                    metrics.counter("serve.router.rerouted").add(hops);
                }
                if matches!(request.body, RequestBody::SessionOpen(_)) {
                    return adopt_session(shared, request.id, w, response);
                }
                return response;
            }
            Err(ForwardFail::Shutdown) => {
                shared.stats.unavailable.fetch_add(1, Ordering::Relaxed);
                return Response::error(request.id, ErrorCode::Unavailable, "router shutting down");
            }
            Err(ForwardFail::Conn) => {
                mark_down(shared, w);
                hops += 1;
            }
        }
    }
}

/// Pin a session follow-up to the worker that owns the session.
fn forward_session_follow_up(shared: &Arc<Shared>, request: &Request, session: u64) -> Response {
    let route = {
        let sessions = shared.sessions.lock().expect("sessions poisoned");
        sessions.get(&session).map(|r| (r.worker, r.remote))
    };
    let Some((worker, remote)) = route else {
        return Response::error(
            request.id,
            ErrorCode::SessionNotFound,
            format!("session {session} is not open on this router"),
        );
    };
    if !shared.slots[worker].healthy.load(Ordering::SeqCst) {
        shared
            .sessions
            .lock()
            .expect("sessions poisoned")
            .remove(&session);
        shared.stats.unavailable.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            request.id,
            ErrorCode::Unavailable,
            format!("session {session} was lost: its worker is down"),
        );
    }
    let rewritten = Request {
        id: request.id,
        deadline_ms: request.deadline_ms,
        body: rewrite_session_id(&request.body, remote),
    };
    match forward_once(shared, worker, &rewritten) {
        Ok(response) => {
            shared.stats.forwarded.fetch_add(1, Ordering::Relaxed);
            MetricsRegistry::global()
                .counter("serve.router.forwarded")
                .incr();
            if matches!(request.body, RequestBody::SessionClose { .. }) {
                shared
                    .sessions
                    .lock()
                    .expect("sessions poisoned")
                    .remove(&session);
            }
            rewrite_result_session(response, session)
        }
        Err(ForwardFail::Shutdown) => {
            shared.stats.unavailable.fetch_add(1, Ordering::Relaxed);
            Response::error(request.id, ErrorCode::Unavailable, "router shutting down")
        }
        Err(ForwardFail::Conn) => {
            // The streaming state died with the worker; a session
            // follow-up is not idempotent, so no failover retry.
            mark_down(shared, worker);
            shared.stats.unavailable.fetch_add(1, Ordering::Relaxed);
            Response::error(
                request.id,
                ErrorCode::Unavailable,
                format!("session {session} was lost: its worker died mid-request"),
            )
        }
    }
}

/// On a successful `SessionOpen`, record the route and swap the
/// worker-local session id for a router-scoped one.
fn adopt_session(shared: &Arc<Shared>, id: u64, worker: usize, response: Response) -> Response {
    let ResponsePayload::Ok { kind, result } = response.payload else {
        return response;
    };
    let Some(remote) = result.get("session").and_then(Json::as_u64) else {
        return Response::error(
            id,
            ErrorCode::Internal,
            "worker session_open result lacks `session`",
        );
    };
    let router_session = shared.next_session.fetch_add(1, Ordering::SeqCst);
    shared
        .sessions
        .lock()
        .expect("sessions poisoned")
        .insert(router_session, SessionRoute { worker, remote });
    shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
    MetricsRegistry::global()
        .counter("serve.router.sessions.opened")
        .incr();
    rewrite_result_session(
        Response {
            id,
            payload: ResponsePayload::Ok { kind, result },
        },
        router_session,
    )
}

/// A session-affine request body with the worker-local session id
/// substituted in.
fn rewrite_session_id(body: &RequestBody, remote: u64) -> RequestBody {
    match body {
        RequestBody::SessionPush { samples, .. } => RequestBody::SessionPush {
            session: remote,
            samples: samples.clone(),
        },
        RequestBody::SessionVerdict { .. } => RequestBody::SessionVerdict { session: remote },
        RequestBody::SessionClose { .. } => RequestBody::SessionClose { session: remote },
        other => other.clone(),
    }
}

/// Rewrite a worker response's `session` field back to the
/// router-scoped id, so clients only ever see one id space.
fn rewrite_result_session(response: Response, router_session: u64) -> Response {
    let Response { id, payload } = response;
    let payload = match payload {
        ResponsePayload::Ok { kind, result } => {
            let result = match result {
                Json::Obj(mut pairs) => {
                    for (k, v) in &mut pairs {
                        if k == "session" {
                            *v = Json::num(router_session as f64);
                        }
                    }
                    Json::Obj(pairs)
                }
                other => other,
            };
            ResponsePayload::Ok { kind, result }
        }
        other => other,
    };
    Response { id, payload }
}

fn router_stats(shared: &Arc<Shared>) -> Json {
    let stats = &shared.stats;
    let workers = shared
        .slots
        .iter()
        .map(|slot| {
            Json::obj(vec![
                ("addr", Json::str(slot.addr.as_str())),
                ("healthy", Json::Bool(slot.healthy.load(Ordering::SeqCst))),
                (
                    "in_flight",
                    Json::num(slot.in_flight.load(Ordering::SeqCst) as f64),
                ),
            ])
        })
        .collect();
    let sessions_open = shared.sessions.lock().expect("sessions poisoned").len();
    Json::obj(vec![
        ("role", Json::str("router")),
        ("protocol_version", Json::num(PROTOCOL_VERSION as f64)),
        (
            "router",
            Json::obj(vec![
                (
                    "route_table_version",
                    Json::num(stats.route_version.load(Ordering::Relaxed) as f64),
                ),
                (
                    "forwarded",
                    Json::num(stats.forwarded.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rerouted",
                    Json::num(stats.rerouted.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected",
                    Json::num(stats.rejected.load(Ordering::Relaxed) as f64),
                ),
                (
                    "unavailable",
                    Json::num(stats.unavailable.load(Ordering::Relaxed) as f64),
                ),
                ("sessions_open", Json::num(sessions_open as f64)),
                (
                    "sessions_opened",
                    Json::num(stats.sessions_opened.load(Ordering::Relaxed) as f64),
                ),
                (
                    "warmed",
                    Json::num(stats.warmed.load(Ordering::Relaxed) as f64),
                ),
                ("workers", Json::Arr(workers)),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Worker transport
// ---------------------------------------------------------------------------

enum ForwardFail {
    /// The router is shutting down; answer `unavailable`, don't blame
    /// the worker.
    Shutdown,
    /// Transport-level failure: connect, write, read, or desync. The
    /// worker is presumed dead.
    Conn,
}

/// Decrement-on-drop guard for a worker's in-flight gauge.
struct InFlight<'a>(&'a AtomicU64);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One strict request→response exchange with worker `w`, through its
/// connection pool. Any failure drops the connection (never returned to
/// the pool half-used).
fn forward_once(
    shared: &Arc<Shared>,
    w: usize,
    request: &Request,
) -> Result<Response, ForwardFail> {
    let slot = &shared.slots[w];
    slot.in_flight.fetch_add(1, Ordering::SeqCst);
    let _guard = InFlight(&slot.in_flight);
    let mut conn = checkout(slot).map_err(|_| ForwardFail::Conn)?;
    if write_frame(&mut conn.writer, &request.to_json()).is_err() {
        return Err(ForwardFail::Conn);
    }
    let deadline = Instant::now() + Duration::from_millis(shared.config.forward_timeout_ms);
    let mut timed_out = false;
    let mut should_abort = || {
        if shared.shutdown.load(Ordering::SeqCst) {
            return true;
        }
        timed_out = Instant::now() >= deadline;
        timed_out
    };
    let json = conn
        .reader
        .read_frame(shared.config.max_frame_len, &mut should_abort)
        .map_err(|e| match e {
            FrameError::Aborted if !timed_out => ForwardFail::Shutdown,
            _ => ForwardFail::Conn,
        })?;
    let response = Response::from_json(&json).map_err(|_| ForwardFail::Conn)?;
    if response.id != request.id {
        // Desynchronized stream; the connection is unusable.
        return Err(ForwardFail::Conn);
    }
    checkin(slot, conn);
    Ok(response)
}

fn checkout(slot: &WorkerSlot) -> std::io::Result<WorkerConn> {
    if let Some(conn) = slot.pool.lock().expect("pool poisoned").pop() {
        return Ok(conn);
    }
    let addr =
        slot.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "unresolvable worker")
        })?;
    let stream = TcpStream::connect_timeout(&addr, PROBE_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let writer = stream.try_clone()?;
    Ok(WorkerConn {
        writer,
        reader: FrameReader::new(stream),
    })
}

fn checkin(slot: &WorkerSlot, conn: WorkerConn) {
    let mut pool = slot.pool.lock().expect("pool poisoned");
    if pool.len() < POOL_MAX {
        pool.push(conn);
    }
}

/// Mark worker `w` unhealthy: bump the route-table version, drop its
/// pooled connections, and orphan every session it owned (follow-ups
/// answer `unavailable` / `session_not_found` instead of hanging).
fn mark_down(shared: &Arc<Shared>, w: usize) {
    if shared.slots[w].healthy.swap(false, Ordering::SeqCst) {
        shared.stats.route_version.fetch_add(1, Ordering::Relaxed);
    }
    shared.slots[w].pool.lock().expect("pool poisoned").clear();
    shared
        .sessions
        .lock()
        .expect("sessions poisoned")
        .retain(|_, route| route.worker != w);
}

// ---------------------------------------------------------------------------
// Health probing / cache warming
// ---------------------------------------------------------------------------

/// One ping round trip to worker `w`. Uses the connection pool, so a
/// successful probe leaves a warm connection behind.
fn probe_worker(shared: &Arc<Shared>, w: usize) -> bool {
    let request = Request {
        id: 0,
        deadline_ms: Some(PROBE_TIMEOUT.as_millis() as u64),
        body: RequestBody::Ping,
    };
    let slot = &shared.slots[w];
    let Ok(mut conn) = checkout(slot) else {
        return false;
    };
    if write_frame(&mut conn.writer, &request.to_json()).is_err() {
        return false;
    }
    let deadline = Instant::now() + PROBE_TIMEOUT;
    let mut should_abort = || shared.shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline;
    let Ok(json) = conn
        .reader
        .read_frame(shared.config.max_frame_len, &mut should_abort)
    else {
        return false;
    };
    let ok = matches!(
        Response::from_json(&json),
        Ok(Response {
            id: 0,
            payload: ResponsePayload::Ok { .. },
        })
    );
    if ok {
        checkin(slot, conn);
    }
    ok
}

fn prober_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        for w in 0..shared.slots.len() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let was = shared.slots[w].healthy.load(Ordering::SeqCst);
            let now = probe_worker(shared, w);
            if was && !now {
                mark_down(shared, w);
            } else if !was && now {
                bring_up(shared, w);
            }
        }
        // Sleep in READ_POLL steps so shutdown is not stuck behind a
        // long probe interval.
        let until = Instant::now() + Duration::from_millis(shared.config.probe_interval_ms);
        while Instant::now() < until {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(READ_POLL.min(until.saturating_duration_since(Instant::now())));
        }
    }
}

/// Re-enable a worker that came (back) up: warm its caches from a
/// healthy peer first, so its first routed request per warmed shard is
/// a memo-cache hit, then flip it healthy and bump the route version.
fn bring_up(shared: &Arc<Shared>, w: usize) {
    if shared.config.warm_on_rejoin {
        let peer = shared
            .slots
            .iter()
            .enumerate()
            .find(|(i, s)| *i != w && s.healthy.load(Ordering::SeqCst))
            .map(|(_, s)| s.addr.clone());
        if let Some(peer) = peer {
            // A failed warm only costs the joiner cold-cache misses;
            // it still takes traffic.
            if let Ok(installed) = warm_worker(&peer, &shared.slots[w].addr, SNAPSHOT_MAX_ENTRIES) {
                shared.stats.warmed.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global()
                    .counter("serve.router.warmed_entries")
                    .add(installed);
            }
        }
    }
    shared.slots[w].healthy.store(true, Ordering::SeqCst);
    shared.stats.route_version.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::{CharacterizeSpec, SessionSpec, TraceSource};
    use crate::server::{ServeConfig, Server};
    use crate::service::Service;

    fn start_worker() -> Server {
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let service = Service::standard().expect("standard service");
        Server::start(config, service).expect("start worker")
    }

    fn test_trace(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 20.0 + 6.0 * f64::sin(i as f64 / 9.0) + 2.5 * f64::sin(i as f64 / 2.0))
            .collect()
    }

    #[test]
    fn router_shards_sessions_and_serves_local_kinds() {
        let w1 = start_worker();
        let w2 = start_worker();
        let config = RouterConfig::new(
            "127.0.0.1:0",
            vec![w1.local_addr().to_string(), w2.local_addr().to_string()],
        );
        let router = Router::start(config).expect("start router");
        assert_eq!(router.healthy_workers(), 2);
        let mut client = Client::connect(router.local_addr()).expect("connect");

        // Ping and Stats are answered by the router itself.
        assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("role").and_then(Json::as_str), Some("router"));
        let block = stats.get("router").expect("router block");
        assert_eq!(
            block
                .get("workers")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );

        // Same calibration key forwards twice; both answers arrive.
        let spec = CharacterizeSpec {
            trace: TraceSource::Inline(test_trace(256)),
            window: 64,
            gauss_windows: 40,
            ..CharacterizeSpec::default()
        };
        let a = client.characterize(spec.clone(), None).unwrap();
        let b = client.characterize(spec, None).unwrap();
        assert_eq!(a.render(), b.render(), "same spec, same worker, same bits");

        // A streaming session through the router: router-scoped id.
        let session = client
            .session_open(SessionSpec {
                window: 64,
                gauss_windows: 40,
                ..SessionSpec::default()
            })
            .unwrap();
        client.session_push(session, test_trace(256)).unwrap();
        let verdict = client.session_verdict(session, None).unwrap();
        assert_eq!(
            verdict.get("session").and_then(Json::as_u64),
            Some(session),
            "verdict must carry the router-scoped id"
        );
        client.session_close(session).unwrap();
        // Follow-up after close: structured session_not_found from the
        // router, connection stays usable.
        match client.session_push(session, vec![1.0]) {
            Err(crate::client::ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::SessionNotFound);
            }
            other => panic!("expected session_not_found, got {other:?}"),
        }
        assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);

        // Snapshot administration is refused at the router.
        match client.snapshot_export(16) {
            Err(crate::client::ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::BadRequest);
            }
            other => panic!("expected bad_request, got {other:?}"),
        }

        let report = router.shutdown();
        assert!(report.forwarded >= 6, "report: {report:?}");
        assert_eq!(report.sessions_opened, 1);
        assert_eq!(report.rerouted, 0);
        let _ = w1.shutdown();
        let _ = w2.shutdown();
    }

    #[test]
    fn router_fails_over_when_a_worker_dies() {
        let w1 = start_worker();
        let w2 = start_worker();
        let mut config = RouterConfig::new(
            "127.0.0.1:0",
            vec![w1.local_addr().to_string(), w2.local_addr().to_string()],
        );
        // Long probe interval: the *forward path* must detect the death.
        config.probe_interval_ms = 60_000;
        config.warm_on_rejoin = false;
        let router = Router::start(config).expect("start router");
        assert_eq!(router.healthy_workers(), 2);

        // Kill one worker, then route requests across many shards so
        // some of them hash to the dead worker and must re-route.
        let _ = w1.shutdown();
        let mut client = Client::connect(router.local_addr()).expect("connect");
        for window in [16usize, 32, 64, 128] {
            let spec = CharacterizeSpec {
                trace: TraceSource::Inline(test_trace(256)),
                window,
                gauss_windows: 20,
                ..CharacterizeSpec::default()
            };
            let result = client.characterize(spec, None).unwrap();
            assert!(result.get("scales").is_some(), "window {window} answered");
        }
        assert_eq!(router.healthy_workers(), 1, "dead worker marked down");
        let report = router.shutdown();
        assert_eq!(report.forwarded, 4, "every request got exactly one answer");
        let _ = w2.shutdown();
    }

    #[test]
    fn router_rejects_unroutable_states() {
        // No worker listening at all: every shard-keyed request answers
        // a structured `unavailable`, never a hang or a transport error.
        let dead = {
            // Grab a port that nothing listens on.
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut config = RouterConfig::new("127.0.0.1:0", vec![dead]);
        config.probe_interval_ms = 60_000;
        let router = Router::start(config).expect("start router");
        assert_eq!(router.healthy_workers(), 0);
        let mut client = Client::connect(router.local_addr()).expect("connect");
        match client.characterize(
            CharacterizeSpec {
                trace: TraceSource::Inline(test_trace(64)),
                window: 16,
                gauss_windows: 10,
                ..CharacterizeSpec::default()
            },
            None,
        ) {
            Err(crate::client::ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::Unavailable);
            }
            other => panic!("expected unavailable, got {other:?}"),
        }
        // Ping still works: the router itself is alive.
        assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
        let report = router.shutdown();
        assert_eq!(report.forwarded, 0);
        assert!(report.unavailable >= 1);
    }
}
