//! The scale-out tier: consistent-hash sharded routing over a worker
//! fleet.
//!
//! A [`Router`] fronts N ordinary [`crate::server::Server`] workers.
//! Requests that carry a calibration identity
//! ([`crate::protocol::Request::shard_key`]) are consistently hashed
//! onto the fleet by [`HashRing`], so every worker's memo caches stay
//! hot and pairwise disjoint; streaming sessions are pinned to the
//! worker that opened them; and a worker (re)joining the ring is warmed
//! from a healthy peer's caches ([`warm_worker`]) before it takes
//! traffic. The router speaks the same length-prefixed JSON wire
//! protocol on both sides — clients need no changes, and a worker
//! cannot tell a router from a direct client.

pub mod ring;
pub mod router;
pub mod snapshot;

pub use ring::HashRing;
pub use router::{Router, RouterConfig, RouterReport};
pub use snapshot::warm_worker;
