//! Threaded TCP front: admission control, worker pool, deadlines,
//! graceful shutdown.
//!
//! ```text
//!  accept thread ──► connection threads (1/conn, read + decode)
//!                          │  try_push            ▲ write responses
//!                          ▼                      │ (shared writer)
//!                    bounded queue ──► worker pool (N, run handlers)
//! ```
//!
//! Design points:
//!
//! * **Backpressure is explicit.** The admission queue is bounded;
//!   when it is full the *connection thread* answers
//!   [`ResponsePayload::Rejected`] with a retry hint immediately —
//!   overload degrades into fast, structured rejections instead of
//!   unbounded queueing and blown deadlines.
//! * **Deadlines are cooperative.** A request's deadline is checked at
//!   dequeue (cheap drop of work that is already too late) and then
//!   threaded into the handlers, which poll it between analysis stages
//!   and — for closed-loop simulations — every few thousand simulated
//!   cycles ([`didt_core::control::DEADLINE_CHECK_INTERVAL`]).
//! * **Batch claims are stealable.** A worker that drains a
//!   same-calibration batch parks the tail of the group on its own
//!   claim deque (see [`didt_bench::StealDeques`]); an idle peer
//!   steals half of the deepest deque instead of waiting for the
//!   queue, so lane packing never serializes a burst behind one
//!   worker.
//! * **Workers never die.** Handler panics are caught per request
//!   ([`std::panic::catch_unwind`]), counted, and answered as
//!   `internal` errors; the pool keeps its width for the life of the
//!   server (protocol tests assert this by hammering the server with
//!   malformed traffic and then checking it still answers).
//! * **Shutdown drains.** [`Server::shutdown`] stops the accept loop
//!   and the connection readers, closes the queue, lets the workers
//!   finish every admitted job (responses still reach their sockets
//!   through the shared writers), then joins everything.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use didt_bench::StealDeques;
use didt_dsp::Wavelet;
use didt_telemetry::{Json, MetricsRegistry};

use crate::protocol::{
    write_frame, ErrorCode, FrameError, FrameReader, Request, Response, ResponsePayload,
    MAX_FRAME_LEN,
};
use crate::service::Service;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker pool width.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects.
    pub queue_depth: usize,
    /// Deadline applied to requests that carry none.
    pub default_deadline_ms: Option<u64>,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
    /// Backoff hint sent with rejections.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: didt_bench::default_threads().clamp(1, 8),
            queue_depth: 64,
            default_deadline_ms: None,
            max_frame_len: MAX_FRAME_LEN,
            retry_after_ms: 50,
        }
    }
}

/// How often connection readers wake up to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Most requests a worker drains from the queue as one batch: the job
/// it popped plus up to `BATCH_MAX - 1` queued `Characterize` requests
/// sharing its calibration key. Two lane-groups of the batched
/// estimator per drain.
pub const BATCH_MAX: usize = 8;

// ---------------------------------------------------------------------------
// Bounded queue
// ---------------------------------------------------------------------------

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Outcome of a non-blocking [`BoundedQueue::try_pop`].
enum PopNow<T> {
    /// The next queued item.
    Item(T),
    /// Nothing queued, queue still open.
    Empty,
    /// Closed and drained — no item will ever arrive again.
    Closed,
}

/// A bounded MPMC queue: non-blocking producers (admission either
/// succeeds instantly or reports "full"), blocking consumers.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    takers: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            capacity,
        }
    }

    /// Admit `item`, or return it when the queue is full or closed.
    /// On success returns the occupancy after the push.
    fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.takers.notify_one();
        Ok(depth)
    }

    /// Occupancy right now.
    fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Block for the next item; `None` once the queue is closed *and*
    /// drained.
    #[cfg(test)]
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.takers.wait(inner).expect("queue poisoned");
        }
    }

    /// Non-blocking pop: the next item, or whether the queue is closed
    /// and drained. Workers interleave this with their steal-aware
    /// claim deques, so they must never park inside the queue.
    fn try_pop(&self) -> PopNow<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if let Some(item) = inner.items.pop_front() {
            return PopNow::Item(item);
        }
        if inner.closed {
            PopNow::Closed
        } else {
            PopNow::Empty
        }
    }

    /// Block until a producer pushes, the queue closes, someone calls
    /// [`Self::notify_all`], or `timeout` lapses — the idle wait
    /// between a worker's claim/steal rounds.
    fn wait_brief(&self, timeout: Duration) {
        let inner = self.inner.lock().expect("queue poisoned");
        if inner.items.is_empty() && !inner.closed {
            let _ = self.takers.wait_timeout(inner, timeout);
        }
    }

    /// Wake every waiting consumer (used after parking stealable
    /// claims so idle peers re-check the claim deques).
    fn notify_all(&self) {
        self.takers.notify_all();
    }

    /// Stop admitting; wake every blocked consumer.
    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.takers.notify_all();
    }

    /// Remove and return up to `max` queued items matching `pred`,
    /// preserving queue order among both the taken and the remaining
    /// items. Non-blocking; returns fewer (possibly zero) items when
    /// the queue holds fewer matches.
    fn drain_where<F: FnMut(&T) -> bool>(&self, max: usize, mut pred: F) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let mut taken = Vec::new();
        let mut i = 0;
        while taken.len() < max && i < inner.items.len() {
            if pred(&inner.items[i]) {
                taken.push(inner.items.remove(i).expect("indexed item"));
            } else {
                i += 1;
            }
        }
        taken
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Write half of a connection, shared between the connection thread
/// (rejections, protocol errors) and workers (results).
type ConnWriter = Arc<Mutex<TcpStream>>;

fn send_response(writer: &ConnWriter, response: &Response) -> std::io::Result<()> {
    let json = response.to_json();
    let mut stream = writer.lock().expect("writer poisoned");
    write_frame(&mut *stream, &json)
}

struct Job {
    request: Request,
    deadline: Option<Instant>,
    enqueued: Instant,
    writer: ConnWriter,
}

struct Shared {
    service: Service,
    queue: BoundedQueue<Job>,
    /// Per-worker claim deques (the work-stealing core of
    /// DESIGN.md §16). A worker that drains a same-calibration batch
    /// parks the tail of the group on its own deque; idle peers steal
    /// half of the deepest deque instead of idling while one worker
    /// holds up to `BATCH_MAX - 1` queued requests.
    claims: StealDeques<Job>,
    shutdown: AtomicBool,
    config: ServeConfig,
}

/// Final counters returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Requests answered.
    pub served: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Deadline expiries (queue or simulation).
    pub deadline_exceeded: u64,
    /// Undecodable frames/requests.
    pub protocol_errors: u64,
    /// Handler panics caught by workers.
    pub worker_panics: u64,
}

/// A running dI/dt characterization server.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind, spawn the pool, and start accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failure.
    pub fn start(config: ServeConfig, service: Service) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stats = service.stats();
        stats
            .workers
            .store(config.workers as u64, Ordering::Relaxed);
        stats
            .queue_capacity
            .store(config.queue_depth as u64, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            claims: StealDeques::new(config.workers),
            service,
            shutdown: AtomicBool::new(false),
            config,
        });

        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("didt-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();

        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("didt-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn accept loop")
        };

        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            workers,
            conns,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain admitted work, join every thread.
    #[must_use]
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept thread blocks in accept(); a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Connection readers poll the flag every READ_POLL and exit;
        // join them before closing the queue so no admission races the
        // close.
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns poisoned"));
        for handle in conns {
            let _ = handle.join();
        }
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let stats = self.shared.service.stats();
        ShutdownReport {
            served: stats.served.load(Ordering::Relaxed),
            rejected: stats.rejected.load(Ordering::Relaxed),
            deadline_exceeded: stats.deadline_exceeded.load(Ordering::Relaxed),
            protocol_errors: stats.protocol_errors.load(Ordering::Relaxed),
            worker_panics: stats.worker_panics.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("didt-serve-conn".to_string())
            .spawn(move || connection_loop(&shared, stream));
        if let Ok(handle) = handle {
            conns.lock().expect("conns poisoned").push(handle);
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer: ConnWriter = Arc::new(Mutex::new(write_half));
    let mut reader = FrameReader::new(stream);
    let stats = shared.service.stats();
    loop {
        let mut should_abort = || shared.shutdown.load(Ordering::SeqCst);
        match reader.read_frame(shared.config.max_frame_len, &mut should_abort) {
            Ok(json) => match Request::from_json(&json) {
                Ok(request) => admit(shared, request, &writer),
                Err(message) => {
                    // The frame itself was well-formed, so the stream
                    // is still in sync — answer and keep reading.
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let id = json.get("id").and_then(Json::as_u64).unwrap_or(0);
                    let _ = send_response(
                        &writer,
                        &Response::error(id, ErrorCode::BadRequest, message),
                    );
                }
            },
            Err(FrameError::Json(e)) => {
                // Bad payload, intact framing: recoverable.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_response(
                    &writer,
                    &Response::error(0, ErrorCode::BadRequest, format!("bad payload: {e}")),
                );
            }
            Err(FrameError::TooLarge { len, max }) => {
                // The oversized payload was never read, so the stream
                // can't be resynchronized — answer, then hang up.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_response(
                    &writer,
                    &Response::error(
                        0,
                        ErrorCode::BadRequest,
                        format!("frame of {len} bytes exceeds limit of {max}"),
                    ),
                );
                break;
            }
            Err(FrameError::Truncated { .. }) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(FrameError::Closed | FrameError::Aborted | FrameError::Io(_)) => break,
        }
    }
}

fn admit(shared: &Arc<Shared>, request: Request, writer: &ConnWriter) {
    let id = request.id;
    let deadline = request
        .deadline_ms
        .or(shared.config.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let job = Job {
        request,
        deadline,
        enqueued: Instant::now(),
        writer: Arc::clone(writer),
    };
    if shared.queue.try_push(job).is_err() {
        let stats = shared.service.stats();
        stats.rejected.fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global().counter("serve.rejected").incr();
        let _ = send_response(
            writer,
            &Response::rejected(id, shared.config.retry_after_ms, shared.queue.len() as u64),
        );
    }
}

/// The calibration identity of a queued `Characterize` request: jobs
/// sharing this key hit the same cached gain model, so a worker can
/// drain them together and keep the calibration (and the batched
/// estimator's lane groups) hot across the whole group.
fn calibration_key(request: &Request) -> Option<(&'static str, &'static str, usize, u64)> {
    match &request.body {
        crate::protocol::RequestBody::Characterize(spec) => Some((
            spec.family.name(),
            spec.boundary.name(),
            spec.window,
            spec.pdn_pct.to_bits(),
        )),
        _ => None,
    }
}

/// How long an idle worker parks between claim/steal rounds when both
/// the queue and every claim deque look empty.
const WORKER_IDLE_POLL: Duration = Duration::from_millis(2);

fn worker_loop(shared: &Arc<Shared>, me: usize) {
    loop {
        // 1. This worker's own parked claims (batch-drain tails).
        if let Some(job) = shared.claims.pop(me) {
            process_job(shared, job);
            continue;
        }
        // 2. Fresh work from the admission queue. Same-calibration
        //    Characterize requests already waiting ride along with the
        //    popped job as one drained claim; the tail of the claim is
        //    *parked* on this worker's deque — stealable — rather than
        //    held privately, so a worker never idles while a peer sits
        //    on up to BATCH_MAX-1 queued same-calibration requests.
        let closed = match shared.queue.try_pop() {
            PopNow::Item(job) => {
                let mut group = vec![job];
                if didt_dsp::batch_enabled() {
                    if let Some(key) = calibration_key(&group[0].request) {
                        group.extend(shared.queue.drain_where(BATCH_MAX - 1, |j: &Job| {
                            calibration_key(&j.request) == Some(key)
                        }));
                    }
                }
                if group.len() >= 2 {
                    shared.service.note_batch_group(group.len());
                }
                let mut tail = group.into_iter();
                let first = tail.next().expect("claim group is non-empty");
                let mut parked = 0usize;
                for job in tail {
                    shared.claims.push(me, job);
                    parked += 1;
                }
                if parked > 0 {
                    // Idle peers wait on the queue condvar; wake them
                    // so they re-check the claim deques and steal.
                    shared.queue.notify_all();
                }
                process_job(shared, first);
                continue;
            }
            PopNow::Empty => false,
            PopNow::Closed => true,
        };
        // 3. Steal half of the deepest peer deque.
        if shared.config.workers >= 2 {
            if let Some(victim) = shared.claims.deepest_other(me) {
                let moved = shared.claims.steal_half(me, victim);
                if moved > 0 {
                    shared.service.note_claims_stolen(moved as u64);
                    continue;
                }
            }
        }
        // 4. Idle. Exit only once the queue is closed *and* no claim
        //    is parked anywhere (parked jobs always belong to some
        //    live worker's deque, so none are lost).
        if closed && shared.claims.is_empty() {
            break;
        }
        shared.queue.wait_brief(WORKER_IDLE_POLL);
    }
}

/// Run one claimed job: queue-wait accounting, deadline check, the
/// handler under `catch_unwind`, response write.
fn process_job(shared: &Arc<Shared>, job: Job) {
    let stats = shared.service.stats();
    let metrics = MetricsRegistry::global();
    let now = Instant::now();
    metrics
        .histogram("serve.queue_wait_ns")
        .record_duration(now.duration_since(job.enqueued));
    let id = job.request.id;
    let response = if job.deadline.is_some_and(|d| now >= d) {
        stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        metrics.counter("serve.deadline_exceeded").incr();
        Response::error(
            id,
            ErrorCode::DeadlineExceeded,
            "deadline expired while queued",
        )
    } else {
        let service = &shared.service;
        let request = &job.request;
        let deadline = job.deadline;
        match catch_unwind(AssertUnwindSafe(|| service.handle(request, deadline))) {
            Ok(response) => response,
            Err(_) => {
                stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                metrics.counter("serve.worker_panics").incr();
                Response::error(id, ErrorCode::Internal, "request handler panicked")
            }
        }
    };
    stats.served.fetch_add(1, Ordering::Relaxed);
    if matches!(response.payload, ResponsePayload::Error { .. }) {
        metrics.counter("serve.errors").incr();
    }
    // A peer that vanished mid-request is its own problem; the
    // worker moves on.
    let _ = send_response(&job.writer, &response);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_rejects_when_full_and_drains_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3));
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_where_takes_matches_in_order_and_preserves_rest() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.try_push(v).unwrap();
        }
        let even = q.drain_where(2, |v| v % 2 == 0);
        assert_eq!(even, vec![2, 4]); // capped at 2, in queue order
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(6));
        assert!(q.drain_where(4, |_| true).is_empty());
    }

    #[test]
    fn bounded_queue_wakes_blocked_consumer_on_close() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let taker = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(taker.join().unwrap(), None);
    }
}
