//! Request handlers over one process-wide calibration cache.
//!
//! [`Service`] is transport-agnostic: [`Service::handle`] maps one
//! decoded [`Request`] to one [`Response`], synchronously, on whatever
//! thread calls it. The TCP front in [`crate::server`] owns the worker
//! pool; tests and the in-process example call `handle` directly.
//!
//! All expensive intermediates — calibrated PDNs, monitor designs,
//! captured traces, gain models, uncontrolled baselines — live in one
//! shared [`SweepContext`], so every connection benefits from every
//! other connection's calibration work, and repeated specs are answered
//! from cache. The `ClosedLoop` handler goes through the *same*
//! [`SweepContext::run_point_deadline`] path as the batch experiment
//! binaries, which is what makes serial client replay bit-identical to
//! batch-runner results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use didt_bench::{GainSnapshotEntry, SweepContext, SweepPoint};
use didt_core::characterize::{EmergencyEstimator, GaussianityStudy, VarianceModel};
use didt_core::monitor::TermKind;
use didt_core::DidtError;
use didt_dsp::streaming::StreamingHaar;
use didt_dsp::{dwt_boundary, BoundaryMode, Wavelet, WaveletFamily};
use didt_stats::lag_correlation;
use didt_telemetry::{seed_to_hex, Json, MetricsRegistry};
use didt_uarch::Benchmark;

use crate::protocol::{
    snapshot_entry_to_json, CharacterizeSpec, ClosedLoopSpec, DesignSpec, ErrorCode, Request,
    RequestBody, Response, SessionSpec, TraceSource, PROTOCOL_VERSION,
};

/// Cap on concurrently open streaming sessions per service instance.
pub const MAX_OPEN_SESSIONS: usize = 256;

/// Cap on total samples accumulated by one streaming session — matches
/// the synthetic trace-length cap of the one-shot `Characterize` path.
pub const MAX_SESSION_SAMPLES: usize = 4_000_000;

/// Seed for server-side gain calibrations. Fixed so identical
/// `Characterize` specs give identical answers across connections,
/// restarts and hosts.
pub const GAIN_CALIBRATION_SEED: u64 = 0xCA11_B8A7E;

/// Shared service counters. The [`crate::server::Server`] front updates
/// the admission/worker counters; the handlers only read them (for the
/// `Stats` response).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests answered (any status, including errors).
    pub served: AtomicU64,
    /// Requests rejected at admission (queue full).
    pub rejected: AtomicU64,
    /// Requests whose deadline expired (in queue or mid-simulation).
    pub deadline_exceeded: AtomicU64,
    /// Frames that failed to decode (bad length, JSON, or request shape).
    pub protocol_errors: AtomicU64,
    /// Handler panics caught by the worker pool.
    pub worker_panics: AtomicU64,
    /// Worker pool width (set once at server start).
    pub workers: AtomicU64,
    /// Admission queue capacity (set once at server start).
    pub queue_capacity: AtomicU64,
    /// Same-calibration `Characterize` groups drained together (size
    /// ≥ 2; singleton pops are not batches).
    pub batch_groups: AtomicU64,
    /// Requests served inside those groups.
    pub batch_requests: AtomicU64,
    /// Parked batch-claim jobs stolen by idle workers from a peer's
    /// claim deque.
    pub claims_stolen: AtomicU64,
    /// Streaming sessions opened over the process lifetime.
    pub sessions_opened: AtomicU64,
    /// Streaming sessions closed by the client.
    pub sessions_closed: AtomicU64,
    /// Current samples accepted across all `SessionPush` requests.
    pub session_samples: AtomicU64,
    /// Incremental verdicts computed across all sessions.
    pub session_verdicts: AtomicU64,
}

impl ServiceStats {
    fn snapshot_pairs(&self) -> Vec<(&'static str, Json)> {
        let n = |a: &AtomicU64| Json::num(a.load(Ordering::Relaxed) as f64);
        vec![
            ("served", n(&self.served)),
            ("rejected", n(&self.rejected)),
            ("deadline_exceeded", n(&self.deadline_exceeded)),
            ("protocol_errors", n(&self.protocol_errors)),
            ("worker_panics", n(&self.worker_panics)),
            ("workers", n(&self.workers)),
            ("queue_capacity", n(&self.queue_capacity)),
        ]
    }
}

/// One open streaming session: the incremental Haar pyramid plus the
/// full sample history. The pyramid and per-level coefficient rows are
/// grown in push order, so at verdict time they hold exactly what a
/// one-shot `Characterize` over the concatenated samples would have
/// accumulated — the basis of the bit-identity contract.
#[derive(Debug)]
struct SessionState {
    spec: SessionSpec,
    levels: usize,
    pyramid: StreamingHaar,
    per_level: Vec<Vec<f64>>,
    samples: Vec<f64>,
    verdicts: u64,
}

/// The dI/dt characterization service.
#[derive(Debug, Clone)]
pub struct Service {
    ctx: Arc<SweepContext>,
    stats: Arc<ServiceStats>,
    sessions: Arc<Mutex<HashMap<u64, SessionState>>>,
    next_session: Arc<AtomicU64>,
    started: Instant,
}

type HandlerResult = Result<Json, (ErrorCode, String)>;

fn bad(msg: impl Into<String>) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg.into())
}

/// The structured answer for an unknown session id — a normal error
/// response on an intact connection, never a desync.
fn no_session(session: u64) -> (ErrorCode, String) {
    (
        ErrorCode::SessionNotFound,
        format!("session {session} is not open (never opened, or already closed)"),
    )
}

fn didt_err(e: &DidtError) -> (ErrorCode, String) {
    match e {
        DidtError::DeadlineExceeded { .. } => (ErrorCode::DeadlineExceeded, e.to_string()),
        _ => bad(e.to_string()),
    }
}

fn check_deadline(deadline: Option<Instant>) -> Result<(), (ErrorCode, String)> {
    match deadline {
        Some(d) if Instant::now() >= d => Err((
            ErrorCode::DeadlineExceeded,
            "deadline exceeded between analysis stages".to_string(),
        )),
        _ => Ok(()),
    }
}

impl Service {
    /// A service over the standard Table 1 system.
    ///
    /// # Errors
    ///
    /// Propagates calibration failure.
    pub fn standard() -> Result<Service, DidtError> {
        Ok(Service::new(SweepContext::standard()?))
    }

    /// A service over an existing shared context (lets tests and the
    /// load harness inspect the cache the server is using).
    #[must_use]
    pub fn new(ctx: Arc<SweepContext>) -> Service {
        Service {
            ctx,
            stats: Arc::new(ServiceStats::default()),
            sessions: Arc::new(Mutex::new(HashMap::new())),
            next_session: Arc::new(AtomicU64::new(1)),
            started: Instant::now(),
        }
    }

    /// The shared calibration context.
    #[must_use]
    pub fn context(&self) -> &Arc<SweepContext> {
        &self.ctx
    }

    /// The shared counters (the server front updates these).
    #[must_use]
    pub fn stats(&self) -> Arc<ServiceStats> {
        Arc::clone(&self.stats)
    }

    /// Handle one request synchronously.
    ///
    /// Never panics across this boundary by contract — handler errors
    /// become [`crate::protocol::ResponsePayload::Error`] responses; the
    /// worker pool additionally catches panics as a last line of
    /// defense.
    #[must_use]
    pub fn handle(&self, request: &Request, deadline: Option<Instant>) -> Response {
        let kind = request.body.kind();
        let metrics = MetricsRegistry::global();
        metrics.counter(&format!("serve.requests.{kind}")).incr();
        let _span = match &request.body {
            RequestBody::Ping => didt_telemetry::span("serve.handle.ping"),
            RequestBody::Stats => didt_telemetry::span("serve.handle.stats"),
            RequestBody::Characterize(_) => didt_telemetry::span("serve.handle.characterize"),
            RequestBody::ClosedLoop(_) => didt_telemetry::span("serve.handle.closed_loop"),
            RequestBody::Design(_) => didt_telemetry::span("serve.handle.design"),
            RequestBody::SessionOpen(_)
            | RequestBody::SessionPush { .. }
            | RequestBody::SessionVerdict { .. }
            | RequestBody::SessionClose { .. } => didt_telemetry::span("serve.handle.session"),
            RequestBody::SnapshotExport { .. } | RequestBody::SnapshotImport { .. } => {
                didt_telemetry::span("serve.handle.snapshot")
            }
        };
        let t0 = Instant::now();
        let result = match &request.body {
            RequestBody::Ping => Ok(Json::obj(vec![(
                "version",
                Json::num(PROTOCOL_VERSION as f64),
            )])),
            RequestBody::Stats => Ok(self.stats_report()),
            RequestBody::Characterize(spec) => self.characterize(spec, deadline),
            RequestBody::ClosedLoop(spec) => self.closed_loop(spec, deadline),
            RequestBody::Design(spec) => self.design(spec),
            RequestBody::SessionOpen(spec) => self.session_open(spec),
            RequestBody::SessionPush { session, samples } => self.session_push(*session, samples),
            RequestBody::SessionVerdict { session } => self.session_verdict(*session, deadline),
            RequestBody::SessionClose { session } => self.session_close(*session),
            RequestBody::SnapshotExport { max_entries } => self.snapshot_export(*max_entries),
            RequestBody::SnapshotImport { entries } => self.snapshot_import(entries),
        };
        metrics
            .histogram("serve.handle_ns")
            .record_duration(t0.elapsed());
        match result {
            Ok(json) => Response::ok(request.id, kind, json),
            Err((code, message)) => {
                if code == ErrorCode::DeadlineExceeded {
                    self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    metrics.counter("serve.deadline_exceeded").incr();
                }
                Response::error(request.id, code, message)
            }
        }
    }

    /// Handle a drained group of requests sequentially, recording the
    /// group in the batch counters when it holds two or more requests.
    /// Each response is exactly what [`Service::handle`] would have
    /// produced for that request alone — batching is invisible to
    /// clients.
    #[must_use]
    pub fn handle_batch(&self, group: &[(&Request, Option<Instant>)]) -> Vec<Response> {
        if group.len() >= 2 {
            self.note_batch_group(group.len());
        }
        group
            .iter()
            .map(|(req, dl)| self.handle(req, *dl))
            .collect()
    }

    /// Record one drained same-calibration group of `size` requests.
    pub(crate) fn note_batch_group(&self, size: usize) {
        self.stats.batch_groups.fetch_add(1, Ordering::Relaxed);
        self.stats
            .batch_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        MetricsRegistry::global()
            .counter("serve.batch.drained")
            .add(size as u64);
    }

    /// Record `moved` parked claim jobs stolen by an idle worker from
    /// a peer's claim deque (the steal-aware batch drain).
    pub(crate) fn note_claims_stolen(&self, moved: u64) {
        self.stats.claims_stolen.fetch_add(moved, Ordering::Relaxed);
        MetricsRegistry::global()
            .counter("serve.batch.stolen")
            .add(moved);
    }

    fn stats_report(&self) -> Json {
        let mut pairs = vec![(
            "uptime_ms",
            Json::num(self.started.elapsed().as_millis() as f64),
        )];
        pairs.extend(self.stats.snapshot_pairs());
        let activity = self.ctx.cache_activity();
        let requests: u64 = activity.iter().map(|c| c.requests).sum();
        let hits: u64 = activity.iter().map(|c| c.hits()).sum();
        let classes: Vec<Json> = activity
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("name", Json::str(c.name)),
                    ("computed", Json::num(c.computed as f64)),
                    ("requests", Json::num(c.requests as f64)),
                ])
            })
            .collect();
        pairs.push(("cache", Json::Arr(classes)));
        pairs.push((
            "cache_hit_ratio",
            Json::num(if requests > 0 {
                hits as f64 / requests as f64
            } else {
                0.0
            }),
        ));
        // Simulator throughput, accumulated by the closed-loop kernel
        // over every run this process has done (serve and batch share
        // the counters). Zero until the first `ClosedLoop` request.
        let metrics = MetricsRegistry::global();
        let sim_cycles = metrics.counter("sim.cycles").get();
        let sim_wall_ns = metrics.counter("sim.wall_ns").get();
        pairs.push((
            "sim",
            Json::obj(vec![
                ("cycles", Json::num(sim_cycles as f64)),
                (
                    "cycles_per_sec",
                    Json::num(if sim_wall_ns > 0 {
                        sim_cycles as f64 / sim_wall_ns as f64 * 1e9
                    } else {
                        0.0
                    }),
                ),
            ]),
        ));
        // Recorded-trace activity (TRACE_FORMAT.md §9): chunks accepted
        // by the `.dtrc` reader and records fed into replay/analysis,
        // process-wide. Zero until the first `recorded`/`replay` request.
        pairs.push((
            "trace",
            Json::obj(vec![
                (
                    "read_chunks",
                    Json::num(metrics.counter(didt_trace::READ_CHUNKS_COUNTER).get() as f64),
                ),
                (
                    "replay_cycles",
                    Json::num(metrics.counter(didt_trace::REPLAY_CYCLES_COUNTER).get() as f64),
                ),
            ]),
        ));
        // Batched same-calibration Characterize drains (the worker pool
        // records these; zero when batching is disabled or traffic
        // never lines up). Fill ratio is measured against the drain
        // limit [`crate::server::BATCH_MAX`].
        let groups = self.stats.batch_groups.load(Ordering::Relaxed);
        let batched = self.stats.batch_requests.load(Ordering::Relaxed);
        let stolen = self.stats.claims_stolen.load(Ordering::Relaxed);
        pairs.push((
            "batch",
            Json::obj(vec![
                ("groups", Json::num(groups as f64)),
                ("batched_requests", Json::num(batched as f64)),
                ("stolen_claims", Json::num(stolen as f64)),
                (
                    "mean_fill_ratio",
                    Json::num(if groups > 0 {
                        batched as f64 / (groups * crate::server::BATCH_MAX as u64) as f64
                    } else {
                        0.0
                    }),
                ),
            ]),
        ));
        // Streaming session activity. `open` is the live table size;
        // the rest are lifetime counters.
        pairs.push((
            "sessions",
            Json::obj(vec![
                (
                    "open",
                    Json::num(self.sessions.lock().expect("session table poisoned").len() as f64),
                ),
                (
                    "opened",
                    Json::num(self.stats.sessions_opened.load(Ordering::Relaxed) as f64),
                ),
                (
                    "closed",
                    Json::num(self.stats.sessions_closed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "pushed_samples",
                    Json::num(self.stats.session_samples.load(Ordering::Relaxed) as f64),
                ),
                (
                    "verdicts",
                    Json::num(self.stats.session_verdicts.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ));
        // Queue-wait distribution, recorded by the worker pool at
        // dequeue. Empty (all zeros) when `handle` is called without
        // the TCP front, e.g. from tests or the in-process example.
        let queue_wait = metrics.histogram("serve.queue_wait_ns");
        pairs.push((
            "queue_wait_ns",
            Json::obj(vec![
                ("count", Json::num(queue_wait.count() as f64)),
                ("p50", Json::num(queue_wait.quantile(0.5))),
                ("p95", Json::num(queue_wait.quantile(0.95))),
                ("p99", Json::num(queue_wait.quantile(0.99))),
            ]),
        ));
        Json::obj(pairs)
    }

    fn resolve_trace(&self, source: &TraceSource) -> Result<Arc<Vec<f64>>, (ErrorCode, String)> {
        match source {
            TraceSource::Inline(samples) => {
                if samples.iter().any(|x| !x.is_finite()) {
                    return Err(bad("inline trace holds non-finite samples"));
                }
                Ok(Arc::new(samples.clone()))
            }
            TraceSource::Synth {
                benchmark,
                seed,
                warmup,
                cycles,
            } => {
                let bench = parse_benchmark(benchmark)?;
                if *cycles == 0 || *cycles > 4_000_000 {
                    return Err(bad("`synth.cycles` must be in 1..=4000000"));
                }
                let trace = self.ctx.trace(
                    bench,
                    self.ctx.system().processor(),
                    *seed,
                    *warmup,
                    *cycles,
                );
                Ok(Arc::new(trace.samples.clone()))
            }
            TraceSource::Recorded { path } => {
                let (meta, records) = read_recorded(path)?;
                // Pre-roll records exist to settle stateful consumers;
                // the characterization analyses are stateless per
                // window, so they are simply excluded.
                let samples: Vec<f64> = records[meta.pre_roll as usize..]
                    .iter()
                    .map(|r| r.current)
                    .collect();
                MetricsRegistry::global()
                    .counter(didt_trace::REPLAY_CYCLES_COUNTER)
                    .add(samples.len() as u64);
                Ok(Arc::new(samples))
            }
        }
    }

    fn characterize(&self, spec: &CharacterizeSpec, deadline: Option<Instant>) -> HandlerResult {
        if !spec.window.is_power_of_two() || spec.window < 8 {
            return Err(bad("`window` must be a power of two, at least 8"));
        }
        if !(0.0..1.0).contains(&spec.significance) {
            return Err(bad("`significance` must be in (0, 1)"));
        }
        let trace = self.resolve_trace(&spec.trace)?;
        if trace.len() < spec.window {
            return Err(bad(format!(
                "trace too short: {} samples for a {}-cycle window",
                trace.len(),
                spec.window
            )));
        }
        let mut levels = spec.window.trailing_zeros() as usize;
        // The Haar/periodic combination (every pre-family client) keeps
        // the streaming single-pass path below, bit-identical to the
        // pre-family service. Other combinations run the batch
        // filter-generic transform; `StreamingHaar` has no dbN sibling —
        // the online pyramid is a documented Haar-only capability.
        let haar_streaming =
            spec.family == WaveletFamily::Haar && spec.boundary == BoundaryMode::Periodic;
        if spec.boundary == BoundaryMode::Periodic {
            while levels > 1 && (spec.window >> (levels - 1)) < spec.family.filter_len() {
                levels -= 1;
            }
        }

        // Per-scale variance over the whole (arbitrary-length) trace:
        // streaming pyramid plus an explicit zero-padded tail, so no
        // client sample is silently dropped.
        check_deadline(deadline)?;
        let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); levels];
        if haar_streaming {
            let mut pyramid =
                StreamingHaar::new(levels).map_err(|e| bad(format!("pyramid setup: {e}")))?;
            for &x in trace.iter() {
                for c in pyramid.push(x) {
                    per_level[c.level - 1].push(c.value);
                }
            }
            let (tail, _) = pyramid.finish();
            for c in tail {
                per_level[c.level - 1].push(c.value);
            }
        } else {
            if spec.boundary == BoundaryMode::Periodic
                && !trace.len().is_multiple_of(1usize << levels)
            {
                return Err(bad(format!(
                    "periodic `{}` analysis needs a trace length divisible by {}; \
                     use an expansive boundary mode (zero-pad, symmetric, zeroth-order) \
                     for arbitrary lengths",
                    spec.family.name(),
                    1usize << levels
                )));
            }
            let decomp = dwt_boundary(&trace, &spec.family, levels, spec.boundary)
                .map_err(|e| bad(format!("family transform: {e}")))?;
            for (row, detail) in decomp.detail_rows().enumerate() {
                per_level[row].extend_from_slice(detail);
            }
        }
        let params = SessionSpec {
            pdn_pct: spec.pdn_pct,
            window: spec.window,
            threshold: spec.threshold,
            significance: spec.significance,
            gauss_windows: spec.gauss_windows,
            family: spec.family,
            boundary: spec.boundary,
        };
        self.characterize_report(&trace, &per_level, &params, haar_streaming, deadline)
    }

    /// The analysis back half shared *verbatim* by one-shot
    /// `Characterize` and the streaming session verdict: per-scale
    /// variance/correlation over the accumulated detail rows, the χ²
    /// Gaussianity study, and the Gaussian emergency-fraction estimate.
    /// Because both callers run this literal code over the same inputs,
    /// a session verdict is `to_bits()`-identical to a one-shot over
    /// the concatenated samples.
    fn characterize_report(
        &self,
        trace: &[f64],
        per_level: &[Vec<f64>],
        spec: &SessionSpec,
        haar_streaming: bool,
        deadline: Option<Instant>,
    ) -> HandlerResult {
        let n = trace.len() as f64;
        let scales: Vec<Json> = per_level
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let variance = d.iter().map(|x| x * x).sum::<f64>() / n;
                let corr = if d.len() >= 3 {
                    lag_correlation(d).unwrap_or(0.0)
                } else {
                    0.0
                };
                Json::obj(vec![
                    ("level", Json::num((i + 1) as f64)),
                    ("span", Json::num((1usize << (i + 1)) as f64)),
                    ("variance", Json::num(variance)),
                    ("adjacent_correlation", Json::num(corr)),
                ])
            })
            .collect();

        // χ² Gaussianity verdict over sampled windows (paper §4.2).
        check_deadline(deadline)?;
        let gauss = GaussianityStudy::new(spec.significance, GAIN_CALIBRATION_SEED)
            .classify(trace, spec.window, spec.gauss_windows)
            .map_err(|e| didt_err(&e))?;

        // Gaussian emergency-fraction estimate (paper §4.3 step 5).
        check_deadline(deadline)?;
        let gains = self
            .ctx
            .gain_model_family(
                spec.pdn_pct,
                spec.window,
                GAIN_CALIBRATION_SEED,
                spec.family,
            )
            .map_err(|e| didt_err(&e))?;
        let model = if haar_streaming {
            VarianceModel::new((*gains).clone())
        } else {
            VarianceModel::with_boundary((*gains).clone(), None, spec.boundary)
        };
        let estimator = EmergencyEstimator::new(model, spec.threshold);
        // The batched tiling: lane-groups of windows through the SoA
        // kernels, bit-identical to `estimate_trace` (and falling back
        // to it per window for expansive boundaries or forced-scalar
        // runs).
        let (fraction, windows, mean_v) = estimator
            .estimate_trace_batch(trace)
            .map_err(|e| didt_err(&e))?;

        Ok(Json::obj(vec![
            ("trace_len", Json::num(trace.len() as f64)),
            ("window", Json::num(spec.window as f64)),
            ("family", Json::str(spec.family.name())),
            ("boundary", Json::str(spec.boundary.name())),
            ("scales", Json::Arr(scales)),
            (
                "gaussianity",
                Json::obj(vec![
                    ("tested", Json::num(gauss.tested as f64)),
                    ("accepted", Json::num(gauss.accepted as f64)),
                    ("rejected", Json::num(gauss.rejected as f64)),
                    ("degenerate", Json::num(gauss.degenerate as f64)),
                    ("acceptance_rate", Json::num(gauss.acceptance_rate())),
                    ("overall_variance", Json::num(gauss.overall_variance)),
                    (
                        "non_gaussian_variance",
                        Json::num(gauss.non_gaussian_variance),
                    ),
                ]),
            ),
            (
                "emergency",
                Json::obj(vec![
                    ("threshold", Json::num(spec.threshold)),
                    ("estimated_fraction", Json::num(fraction)),
                    ("windows", Json::num(windows as f64)),
                    ("mean_voltage", Json::num(mean_v)),
                ]),
            ),
        ]))
    }

    fn session_open(&self, spec: &SessionSpec) -> HandlerResult {
        if !spec.window.is_power_of_two() || spec.window < 8 {
            return Err(bad("`window` must be a power of two, at least 8"));
        }
        if !(0.0..1.0).contains(&spec.significance) {
            return Err(bad("`significance` must be in (0, 1)"));
        }
        if spec.family != WaveletFamily::Haar || spec.boundary != BoundaryMode::Periodic {
            return Err(bad("streaming sessions require the haar/periodic basis \
                 (the online pyramid has no filter-generic sibling); \
                 use one-shot `characterize` for other bases"));
        }
        // Probe the PDN now so a bad impedance fails at open, not at
        // the first verdict.
        self.ctx.pdn(spec.pdn_pct).map_err(|e| didt_err(&e))?;
        let levels = spec.window.trailing_zeros() as usize;
        let pyramid = StreamingHaar::new(levels).map_err(|e| bad(format!("pyramid setup: {e}")))?;
        let mut sessions = self.sessions.lock().expect("session table poisoned");
        if sessions.len() >= MAX_OPEN_SESSIONS {
            return Err((
                ErrorCode::Unavailable,
                format!("session table full ({MAX_OPEN_SESSIONS} open); close or retry later"),
            ));
        }
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            id,
            SessionState {
                spec: spec.clone(),
                levels,
                pyramid,
                per_level: vec![Vec::new(); levels],
                samples: Vec::new(),
                verdicts: 0,
            },
        );
        self.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global()
            .counter("serve.sessions.opened")
            .incr();
        Ok(Json::obj(vec![
            ("session", Json::num(id as f64)),
            ("window", Json::num(spec.window as f64)),
            ("levels", Json::num(levels as f64)),
        ]))
    }

    fn session_push(&self, session: u64, samples: &[f64]) -> HandlerResult {
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(bad("session chunk holds non-finite samples"));
        }
        let mut sessions = self.sessions.lock().expect("session table poisoned");
        let state = sessions
            .get_mut(&session)
            .ok_or_else(|| no_session(session))?;
        if state.samples.len() + samples.len() > MAX_SESSION_SAMPLES {
            return Err(bad(format!(
                "session would exceed {MAX_SESSION_SAMPLES} samples"
            )));
        }
        for &x in samples {
            for c in state.pyramid.push(x) {
                state.per_level[c.level - 1].push(c.value);
            }
        }
        state.samples.extend_from_slice(samples);
        self.stats
            .session_samples
            .fetch_add(samples.len() as u64, Ordering::Relaxed);
        Ok(Json::obj(vec![
            ("session", Json::num(session as f64)),
            ("received", Json::num(samples.len() as f64)),
            ("total_samples", Json::num(state.samples.len() as f64)),
            (
                "pending_samples",
                Json::num(state.pyramid.pending_samples() as f64),
            ),
        ]))
    }

    fn session_verdict(&self, session: u64, deadline: Option<Instant>) -> HandlerResult {
        // Clone the accumulated state out of the table so the (cheap)
        // session lock is never held across the analysis, then flush
        // the *clone* of the pyramid: the live session keeps absorbing
        // pushes, and this verdict sees exactly the one-shot view of
        // everything pushed so far.
        let (spec, mut per_level, samples, pyramid) = {
            let mut sessions = self.sessions.lock().expect("session table poisoned");
            let state = sessions
                .get_mut(&session)
                .ok_or_else(|| no_session(session))?;
            if state.samples.len() < state.spec.window {
                return Err(bad(format!(
                    "session has {} samples, needs at least the {}-cycle window",
                    state.samples.len(),
                    state.spec.window
                )));
            }
            state.verdicts += 1;
            (
                state.spec.clone(),
                state.per_level.clone(),
                state.samples.clone(),
                state.pyramid.clone(),
            )
        };
        // Zero-padded tail flush, exactly like the one-shot path's
        // `finish` over a trace of this length.
        let (tail, _) = {
            let mut p = pyramid;
            p.finish()
        };
        for c in tail {
            per_level[c.level - 1].push(c.value);
        }
        self.stats.session_verdicts.fetch_add(1, Ordering::Relaxed);
        let mut report = self.characterize_report(&samples, &per_level, &spec, true, deadline)?;
        if let Json::Obj(pairs) = &mut report {
            pairs.insert(0, ("session".to_string(), Json::num(session as f64)));
        }
        Ok(report)
    }

    fn session_close(&self, session: u64) -> HandlerResult {
        let state = self
            .sessions
            .lock()
            .expect("session table poisoned")
            .remove(&session)
            .ok_or_else(|| no_session(session))?;
        self.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
        MetricsRegistry::global()
            .counter("serve.sessions.closed")
            .incr();
        Ok(Json::obj(vec![
            ("session", Json::num(session as f64)),
            ("total_samples", Json::num(state.samples.len() as f64)),
            ("verdicts", Json::num(state.verdicts as f64)),
            ("levels", Json::num(state.levels as f64)),
        ]))
    }

    fn snapshot_export(&self, max_entries: usize) -> HandlerResult {
        let entries = self.ctx.export_gain_entries(max_entries);
        Ok(Json::obj(vec![
            ("count", Json::num(entries.len() as f64)),
            (
                "entries",
                Json::Arr(entries.iter().map(snapshot_entry_to_json).collect()),
            ),
        ]))
    }

    fn snapshot_import(&self, entries: &[GainSnapshotEntry]) -> HandlerResult {
        let mut installed = 0usize;
        for entry in entries {
            if self.ctx.import_gain_entry(entry.clone()) {
                installed += 1;
            }
        }
        MetricsRegistry::global()
            .counter("serve.snapshot.imported")
            .add(installed as u64);
        Ok(Json::obj(vec![
            ("received", Json::num(entries.len() as f64)),
            ("installed", Json::num(installed as f64)),
            ("skipped", Json::num((entries.len() - installed) as f64)),
        ]))
    }

    fn closed_loop(&self, spec: &ClosedLoopSpec, deadline: Option<Instant>) -> HandlerResult {
        let benchmark = parse_benchmark(&spec.benchmark)?;
        if spec.instructions == 0 || spec.instructions > 10_000_000 {
            return Err(bad("`instructions` must be in 1..=10000000"));
        }
        let point = SweepPoint {
            benchmark,
            pdn_pct: spec.pdn_pct,
            monitor_terms: spec.monitor_terms,
            controller: spec.controller,
        };
        let run = didt_bench::RunParams {
            instructions: spec.instructions,
            warmup_cycles: spec.warmup_cycles,
        };
        let (result, replayed_seed) = match &spec.replay {
            Some(path) => {
                let (meta, records) = read_recorded(path)?;
                check_deadline(deadline)?;
                let result = self
                    .ctx
                    .run_replay(&point, run, &records, meta.pre_roll as usize)
                    .map_err(|e| didt_err(&e))?;
                // The meaningful seed of a replayed run is the one the
                // trace was recorded under, not the live point seed.
                (result, Some(meta.seed))
            }
            None => (
                self.ctx
                    .run_point_deadline(&point, run, deadline)
                    .map_err(|e| didt_err(&e))?,
                None,
            ),
        };
        let leg = |r: &didt_core::control::ClosedLoopResult| {
            Json::obj(vec![
                ("cycles", Json::num(r.cycles as f64)),
                ("instructions", Json::num(r.instructions as f64)),
                ("low_emergencies", Json::num(r.low_emergencies as f64)),
                ("high_emergencies", Json::num(r.high_emergencies as f64)),
                ("stall_cycles", Json::num(r.stall_cycles as f64)),
                ("nop_cycles", Json::num(r.nop_cycles as f64)),
                ("false_positives", Json::num(r.false_positives as f64)),
                ("v_min", Json::num(r.v_min)),
                ("v_max", Json::num(r.v_max)),
                ("mean_power", Json::num(r.mean_power)),
            ])
        };
        Ok(Json::obj(vec![
            ("benchmark", Json::str(benchmark.name())),
            ("controller", Json::str(point.controller.tag())),
            (
                "seed_hex",
                Json::str(seed_to_hex(replayed_seed.unwrap_or(result.seed))),
            ),
            ("baseline", leg(&result.baseline)),
            ("controlled", leg(&result.controlled)),
            ("slowdown_pct", Json::num(result.slowdown_pct())),
            (
                "false_positive_rate",
                Json::num(result.controlled.false_positive_rate()),
            ),
            (
                "control_fraction",
                Json::num(result.controlled.control_fraction()),
            ),
        ]))
    }

    fn design(&self, spec: &DesignSpec) -> HandlerResult {
        if !spec.window.is_power_of_two() || spec.window < 8 {
            return Err(bad("`window` must be a power of two, at least 8"));
        }
        let design = self
            .ctx
            .monitor_design(spec.pdn_pct, spec.window)
            .map_err(|e| didt_err(&e))?;
        let weights = design.weights();
        let kept = spec.terms.min(weights.len());
        let terms: Vec<Json> = weights[..kept]
            .iter()
            .map(|t| {
                Json::obj(vec![
                    (
                        "kind",
                        Json::str(match t.kind {
                            TermKind::Detail => "detail",
                            TermKind::Approximation => "approximation",
                        }),
                    ),
                    ("level", Json::num(t.level as f64)),
                    ("index", Json::num(t.index as f64)),
                    ("weight", Json::num(t.weight)),
                ])
            })
            .collect();
        Ok(Json::obj(vec![
            ("window", Json::num(spec.window as f64)),
            ("total_terms", Json::num(weights.len() as f64)),
            ("kept", Json::num(kept as f64)),
            (
                "truncation_error_bound",
                Json::num(design.truncation_error_bound(kept, spec.i_dev)),
            ),
            ("terms", Json::Arr(terms)),
        ]))
    }
}

fn parse_benchmark(name: &str) -> Result<Benchmark, (ErrorCode, String)> {
    name.parse::<Benchmark>()
        .map_err(|_| bad(format!("unknown benchmark `{name}`")))
}

/// Read a server-local `.dtrc` file named by a request. Every reader
/// rejection (missing file, bad magic, CRC mismatch, truncation, ...)
/// is the *client's* problem — it named the file — so the whole
/// [`didt_trace::TraceError`] taxonomy maps to `BadRequest`.
fn read_recorded(
    path: &str,
) -> Result<(didt_trace::TraceMeta, Vec<didt_trace::Record>), (ErrorCode, String)> {
    didt_trace::read_path(std::path::Path::new(path))
        .map_err(|e| bad(format!("recorded trace `{path}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ResponsePayload;
    use didt_bench::ControllerSpec;

    fn service() -> Service {
        Service::standard().expect("standard system")
    }

    fn ok_result(resp: Response) -> Json {
        match resp.payload {
            ResponsePayload::Ok { result, .. } => result,
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn ping_and_stats_answer() {
        let svc = service();
        let ping = ok_result(svc.handle(
            &Request {
                id: 1,
                deadline_ms: None,
                body: RequestBody::Ping,
            },
            None,
        ));
        assert_eq!(
            ping.get("version").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
        let stats = ok_result(svc.handle(
            &Request {
                id: 2,
                deadline_ms: None,
                body: RequestBody::Stats,
            },
            None,
        ));
        assert!(stats.get("cache").is_some());
        assert_eq!(stats.get("worker_panics").and_then(Json::as_u64), Some(0));
        // The throughput block is always present, even before any
        // closed-loop request (rates read 0 rather than NaN).
        let sim = stats.get("sim").expect("sim block");
        assert!(sim.get("cycles_per_sec").and_then(Json::as_f64).is_some());
        let wait = stats.get("queue_wait_ns").expect("queue_wait_ns block");
        for key in ["count", "p50", "p95", "p99"] {
            assert!(wait.get(key).and_then(Json::as_f64).is_some(), "{key}");
        }
    }

    #[test]
    fn characterize_synth_is_deterministic_and_complete() {
        let svc = service();
        let req = Request {
            id: 7,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec {
                window: 64,
                gauss_windows: 40,
                trace: TraceSource::Synth {
                    benchmark: "gzip".to_string(),
                    seed: 0xD1D7,
                    warmup: 500,
                    cycles: 2_048,
                },
                ..CharacterizeSpec::default()
            }),
        };
        let a = ok_result(svc.handle(&req, None));
        let b = ok_result(svc.handle(&req, None));
        assert_eq!(a.render(), b.render(), "same spec must give same answer");
        assert_eq!(
            a.get("scales").and_then(Json::as_arr).map(<[Json]>::len),
            Some(6)
        );
        let frac = a
            .get("emergency")
            .and_then(|e| e.get("estimated_fraction"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn characterize_rejects_bad_specs() {
        let svc = service();
        let mk = |spec: CharacterizeSpec| Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Characterize(spec),
        };
        // Non-power-of-two window.
        let resp = svc.handle(
            &mk(CharacterizeSpec {
                window: 100,
                ..CharacterizeSpec::default()
            }),
            None,
        );
        assert!(matches!(
            resp.payload,
            ResponsePayload::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // Trace shorter than the window.
        let resp = svc.handle(
            &mk(CharacterizeSpec {
                trace: TraceSource::Inline(vec![1.0; 16]),
                window: 64,
                ..CharacterizeSpec::default()
            }),
            None,
        );
        assert!(matches!(
            resp.payload,
            ResponsePayload::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // Unknown benchmark.
        let resp = svc.handle(
            &mk(CharacterizeSpec {
                trace: TraceSource::Synth {
                    benchmark: "doom".to_string(),
                    seed: 1,
                    warmup: 0,
                    cycles: 1_024,
                },
                ..CharacterizeSpec::default()
            }),
            None,
        );
        assert!(matches!(resp.payload, ResponsePayload::Error { .. }));
    }

    #[test]
    fn closed_loop_matches_batch_runner_bitwise() {
        let svc = service();
        let spec = ClosedLoopSpec {
            benchmark: "gzip".to_string(),
            pdn_pct: 150.0,
            monitor_terms: 13,
            controller: ControllerSpec::WaveletThreshold {
                low: 0.975,
                high: 1.025,
                hysteresis: 0.004,
                delay: 1,
            },
            instructions: 2_000,
            warmup_cycles: 1_000,
            replay: None,
        };
        let resp = ok_result(svc.handle(
            &Request {
                id: 3,
                deadline_ms: None,
                body: RequestBody::ClosedLoop(spec),
            },
            None,
        ));
        // The same point through the batch path, on a fresh context.
        let ctx = SweepContext::standard().unwrap();
        let want = ctx
            .run_point(
                &SweepPoint {
                    benchmark: Benchmark::Gzip,
                    pdn_pct: 150.0,
                    monitor_terms: 13,
                    controller: ControllerSpec::WaveletThreshold {
                        low: 0.975,
                        high: 1.025,
                        hysteresis: 0.004,
                        delay: 1,
                    },
                },
                didt_bench::RunParams {
                    instructions: 2_000,
                    warmup_cycles: 1_000,
                },
            )
            .unwrap();
        let got = |key: &str, field: &str| {
            resp.get(key)
                .and_then(|l| l.get(field))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(got("controlled", "cycles") as u64, want.controlled.cycles);
        assert_eq!(
            got("controlled", "v_min").to_bits(),
            want.controlled.v_min.to_bits(),
            "voltage must survive the wire bit-exactly"
        );
        assert_eq!(
            got("baseline", "mean_power").to_bits(),
            want.baseline.mean_power.to_bits()
        );
        assert_eq!(
            resp.get("seed_hex").and_then(Json::as_str).unwrap(),
            seed_to_hex(want.seed)
        );
    }

    #[test]
    fn recorded_characterize_matches_inline_of_the_same_currents() {
        let svc = service();
        let records = svc.context().record_trace(
            Benchmark::Gzip,
            svc.context().system().processor(),
            0xD1D7,
            500,
            2_048,
        );
        let dir =
            std::env::temp_dir().join(format!("didt_serve_recorded_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gzip.dtrc");
        let meta = didt_trace::TraceMeta::new(didt_trace::RecordKind::Full, "gzip");
        didt_trace::write_path(&path, &meta, &records).unwrap();
        let mk = |trace| Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Characterize(CharacterizeSpec {
                window: 64,
                gauss_windows: 40,
                trace,
                ..CharacterizeSpec::default()
            }),
        };
        let recorded = ok_result(svc.handle(
            &mk(TraceSource::Recorded {
                path: path.display().to_string(),
            }),
            None,
        ));
        let inline = ok_result(svc.handle(
            &mk(TraceSource::Inline(
                records.iter().map(|r| r.current).collect(),
            )),
            None,
        ));
        assert_eq!(
            recorded.render(),
            inline.render(),
            "a recorded file must characterize exactly like its currents inline"
        );
        // A nonexistent path is the client's error, not a panic.
        let resp = svc.handle(
            &mk(TraceSource::Recorded {
                path: dir.join("no_such.dtrc").display().to_string(),
            }),
            None,
        );
        assert!(matches!(
            resp.payload,
            ResponsePayload::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn closed_loop_replay_reproduces_the_recorded_live_run() {
        use didt_core::control::{ClosedLoop, ClosedLoopConfig, NoControl};

        let svc = service();
        let ctx = svc.context();
        let pdn = ctx.pdn(150.0).unwrap();
        // The exact config the service's live path would derive for this
        // (benchmark, pct, run) cell.
        let cfg = ClosedLoopConfig {
            seed: didt_bench::workload_seed(Benchmark::Gzip, 150.0),
            warmup_cycles: 500,
            instructions: 2_000,
            ..ClosedLoopConfig::standard(Benchmark::Gzip)
        };
        let harness = ClosedLoop::new(*ctx.system().processor(), *pdn, cfg);
        let live = harness.run_recording(&mut NoControl).unwrap();
        let dir =
            std::env::temp_dir().join(format!("didt_serve_replay_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gzip_run.dtrc");
        didt_trace::write_path(&path, &live.meta(), &live.records).unwrap();

        let resp = ok_result(svc.handle(
            &Request {
                id: 2,
                deadline_ms: None,
                body: RequestBody::ClosedLoop(ClosedLoopSpec {
                    benchmark: "gzip".to_string(),
                    pdn_pct: 150.0,
                    monitor_terms: 13,
                    controller: ControllerSpec::None,
                    instructions: 2_000,
                    warmup_cycles: 500,
                    replay: Some(path.display().to_string()),
                }),
            },
            None,
        ));
        let got = |key: &str, field: &str| {
            resp.get(key)
                .and_then(|l| l.get(field))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(got("baseline", "cycles") as u64, live.result.cycles);
        assert_eq!(
            got("baseline", "v_min").to_bits(),
            live.result.v_min.to_bits(),
            "replaying the file must reproduce the live run bit-exactly"
        );
        assert_eq!(
            got("baseline", "low_emergencies") as u64,
            live.result.low_emergencies
        );
        // The response reports the seed the trace was recorded under.
        assert_eq!(
            resp.get("seed_hex").and_then(Json::as_str).unwrap(),
            seed_to_hex(live.seed)
        );
        // The Stats trace block now shows the reader/replay activity.
        let stats = ok_result(svc.handle(
            &Request {
                id: 3,
                deadline_ms: None,
                body: RequestBody::Stats,
            },
            None,
        ));
        let trace = stats.get("trace").expect("trace block");
        assert!(trace.get("read_chunks").and_then(Json::as_u64).unwrap() >= 1);
        assert!(
            trace.get("replay_cycles").and_then(Json::as_u64).unwrap() >= live.records.len() as u64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let svc = service();
        let resp = svc.handle(
            &Request {
                id: 4,
                deadline_ms: Some(0),
                body: RequestBody::ClosedLoop(ClosedLoopSpec {
                    benchmark: "swim".to_string(),
                    pdn_pct: 150.0,
                    monitor_terms: 13,
                    controller: ControllerSpec::WaveletThreshold {
                        low: 0.975,
                        high: 1.025,
                        hysteresis: 0.004,
                        delay: 1,
                    },
                    instructions: 50_000,
                    warmup_cycles: 5_000,
                    replay: None,
                }),
            },
            Some(Instant::now()),
        );
        assert!(matches!(
            resp.payload,
            ResponsePayload::Error {
                code: ErrorCode::DeadlineExceeded,
                ..
            }
        ));
    }

    fn session_req(id: u64, body: RequestBody) -> Request {
        Request {
            id,
            deadline_ms: None,
            body,
        }
    }

    #[test]
    fn session_verdict_is_bit_identical_to_oneshot_characterize() {
        let svc = service();
        // A deterministic synthetic trace, pushed in ragged chunks so
        // chunk boundaries cross window and pyramid alignments.
        let trace: Vec<f64> = (0..1_234)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 100.0)
            .collect();
        let spec = SessionSpec {
            window: 64,
            gauss_windows: 40,
            ..SessionSpec::default()
        };
        let open = ok_result(svc.handle(
            &session_req(1, RequestBody::SessionOpen(spec.clone())),
            None,
        ));
        let sid = open.get("session").and_then(Json::as_u64).unwrap();
        let mut offset = 0usize;
        for chunk_len in [1, 7, 100, 63, 64, 500, 499] {
            let end = (offset + chunk_len).min(trace.len());
            ok_result(svc.handle(
                &session_req(
                    2,
                    RequestBody::SessionPush {
                        session: sid,
                        samples: trace[offset..end].to_vec(),
                    },
                ),
                None,
            ));
            offset = end;
        }
        assert_eq!(offset, trace.len(), "chunk plan must cover the trace");
        let verdict = ok_result(svc.handle(
            &session_req(3, RequestBody::SessionVerdict { session: sid }),
            None,
        ));
        let oneshot = ok_result(svc.handle(
            &session_req(
                4,
                RequestBody::Characterize(CharacterizeSpec {
                    trace: TraceSource::Inline(trace),
                    window: spec.window,
                    gauss_windows: spec.gauss_windows,
                    ..CharacterizeSpec::default()
                }),
            ),
            None,
        ));
        // Strip the verdict's session id; every remaining byte — every
        // f64 rendered shortest-roundtrip — must match the one-shot.
        let stripped = match verdict {
            Json::Obj(pairs) => {
                Json::Obj(pairs.into_iter().filter(|(k, _)| k != "session").collect())
            }
            other => panic!("verdict must be an object, got {other:?}"),
        };
        assert_eq!(
            stripped.render(),
            oneshot.render(),
            "session verdict must be bit-identical to one-shot characterize"
        );
    }

    #[test]
    fn session_verdicts_are_incremental_and_close_frees_the_id() {
        let svc = service();
        let open = ok_result(svc.handle(
            &session_req(
                1,
                RequestBody::SessionOpen(SessionSpec {
                    window: 32,
                    gauss_windows: 20,
                    ..SessionSpec::default()
                }),
            ),
            None,
        ));
        let sid = open.get("session").and_then(Json::as_u64).unwrap();
        // Too few samples for a verdict: a structured BadRequest.
        let push = |svc: &Service, n: usize| {
            ok_result(svc.handle(
                &session_req(
                    2,
                    RequestBody::SessionPush {
                        session: sid,
                        samples: (0..n).map(|i| 100.0 + (i % 5) as f64).collect(),
                    },
                ),
                None,
            ))
        };
        push(&svc, 16);
        let early = svc.handle(
            &session_req(3, RequestBody::SessionVerdict { session: sid }),
            None,
        );
        assert!(matches!(
            early.payload,
            ResponsePayload::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // Enough samples: verdicts at two horizons differ (more data).
        push(&svc, 48);
        let v1 = ok_result(svc.handle(
            &session_req(4, RequestBody::SessionVerdict { session: sid }),
            None,
        ));
        assert_eq!(v1.get("trace_len").and_then(Json::as_u64), Some(64));
        push(&svc, 64);
        let v2 = ok_result(svc.handle(
            &session_req(5, RequestBody::SessionVerdict { session: sid }),
            None,
        ));
        assert_eq!(v2.get("trace_len").and_then(Json::as_u64), Some(128));
        // Close reports totals; the id is then unknown.
        let closed = ok_result(svc.handle(
            &session_req(6, RequestBody::SessionClose { session: sid }),
            None,
        ));
        assert_eq!(
            closed.get("total_samples").and_then(Json::as_u64),
            Some(128)
        );
        assert_eq!(closed.get("verdicts").and_then(Json::as_u64), Some(2));
        let gone = svc.handle(
            &session_req(
                7,
                RequestBody::SessionPush {
                    session: sid,
                    samples: vec![1.0],
                },
            ),
            None,
        );
        assert!(matches!(
            gone.payload,
            ResponsePayload::Error {
                code: ErrorCode::SessionNotFound,
                ..
            }
        ));
        // Stats surfaces the lifecycle.
        let stats = ok_result(svc.handle(&session_req(8, RequestBody::Stats), None));
        let sessions = stats.get("sessions").expect("sessions block");
        assert_eq!(sessions.get("open").and_then(Json::as_u64), Some(0));
        assert_eq!(sessions.get("opened").and_then(Json::as_u64), Some(1));
        assert_eq!(sessions.get("closed").and_then(Json::as_u64), Some(1));
        assert_eq!(sessions.get("verdicts").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn session_open_rejects_non_streaming_bases() {
        let svc = service();
        for (family, boundary) in [
            (WaveletFamily::Db4, BoundaryMode::Periodic),
            (WaveletFamily::Haar, BoundaryMode::ZeroPad),
        ] {
            let resp = svc.handle(
                &session_req(
                    1,
                    RequestBody::SessionOpen(SessionSpec {
                        family,
                        boundary,
                        ..SessionSpec::default()
                    }),
                ),
                None,
            );
            assert!(
                matches!(
                    resp.payload,
                    ResponsePayload::Error {
                        code: ErrorCode::BadRequest,
                        ..
                    }
                ),
                "{}/{} must be rejected at open",
                family.name(),
                boundary.name()
            );
        }
    }

    #[test]
    fn snapshot_export_import_warms_a_fresh_service() {
        let svc = service();
        // Calibrate two models by serving characterize requests.
        let characterize = |id, pdn_pct, family| {
            session_req(
                id,
                RequestBody::Characterize(CharacterizeSpec {
                    trace: TraceSource::Inline((0..256).map(|i| 100.0 + (i % 7) as f64).collect()),
                    window: 64,
                    gauss_windows: 20,
                    pdn_pct,
                    family,
                    ..CharacterizeSpec::default()
                }),
            )
        };
        ok_result(svc.handle(&characterize(1, 100.0, WaveletFamily::Haar), None));
        ok_result(svc.handle(&characterize(2, 150.0, WaveletFamily::Db4), None));
        let export = ok_result(svc.handle(
            &session_req(3, RequestBody::SnapshotExport { max_entries: 64 }),
            None,
        ));
        assert_eq!(export.get("count").and_then(Json::as_u64), Some(2));
        // Ship the entries to a fresh service over the wire shape.
        let entries: Vec<_> = export
            .get("entries")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|e| crate::protocol::snapshot_entry_from_json(e).unwrap())
            .collect();
        let fresh = service();
        let import = ok_result(fresh.handle(
            &session_req(4, RequestBody::SnapshotImport { entries }),
            None,
        ));
        assert_eq!(import.get("installed").and_then(Json::as_u64), Some(2));
        // The warmed service answers the same specs without calibrating.
        let a = ok_result(svc.handle(&characterize(5, 100.0, WaveletFamily::Haar), None));
        let b = ok_result(fresh.handle(&characterize(6, 100.0, WaveletFamily::Haar), None));
        assert_eq!(a.render(), b.render(), "warmed answer must match origin");
        assert_eq!(
            fresh.context().cache_stats().gains,
            0,
            "warmed model must not be recomputed"
        );
    }

    #[test]
    fn design_reports_sorted_terms_and_bound() {
        let svc = service();
        let resp = ok_result(svc.handle(
            &Request {
                id: 5,
                deadline_ms: None,
                body: RequestBody::Design(DesignSpec {
                    pdn_pct: 150.0,
                    window: 64,
                    terms: 13,
                    i_dev: 10.0,
                }),
            },
            None,
        ));
        assert_eq!(resp.get("kept").and_then(Json::as_u64), Some(13));
        let terms = resp.get("terms").and_then(Json::as_arr).unwrap();
        assert_eq!(terms.len(), 13);
        let w0 = terms[0].get("weight").and_then(Json::as_f64).unwrap();
        let w12 = terms[12].get("weight").and_then(Json::as_f64).unwrap();
        assert!(w0.abs() >= w12.abs(), "terms must be sorted by |weight|");
        assert!(
            resp.get("truncation_error_bound")
                .and_then(Json::as_f64)
                .unwrap()
                >= 0.0
        );
    }
}
