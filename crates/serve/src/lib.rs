//! didt-serve: the characterization pipeline as a network service.
//!
//! Everything below this crate runs as batch experiment binaries; this
//! crate turns the same analyses into an always-on, measured subsystem —
//! the paper's §5 online-monitor framing ("is this trace about to cause
//! a voltage emergency?") answered on demand over TCP.
//!
//! # Architecture
//!
//! * [`protocol`] — a length-prefixed JSON wire format (reusing
//!   `didt-telemetry`'s vendored JSON layer; the offline build has no
//!   serde). One `u32` big-endian length prefix, then a UTF-8 JSON
//!   document. Requests are [`protocol::Request`]; responses are
//!   [`protocol::Response`].
//! * [`service`] — [`service::Service`]: the request handlers. One
//!   process-wide [`didt_bench::SweepContext`] calibration cache is
//!   shared by every connection, so PDNs, monitor designs, gain models,
//!   captured traces and uncontrolled baselines are computed once per
//!   distinct spec no matter how many clients ask.
//! * [`server`] — [`server::Server`]: a threaded TCP front. A bounded
//!   admission queue feeds a fixed worker pool; when the queue is full
//!   the connection thread answers
//!   [`protocol::ResponsePayload::Rejected`] immediately instead of
//!   queueing unboundedly. Per-request deadlines abort long simulations
//!   cooperatively (via [`didt_core::DidtError::DeadlineExceeded`]), and
//!   shutdown drains in-flight work before returning.
//! * [`client`] — [`client::Client`]: a small blocking client used by
//!   the `load_report` harness, the examples and the protocol tests.
//!   Opt-in [`client::ClientConfig`] retry/backoff absorbs overload
//!   rejections on a deterministic schedule.
//! * [`cluster`] — the scale-out tier: [`cluster::Router`] consistent-
//!   hash shards requests on their calibration key across N workers
//!   (each an ordinary [`server::Server`]), with health probes,
//!   failover re-routing, session affinity, and cache-warming
//!   snapshots for joining workers.
//!
//! # Binaries
//!
//! * `serve` — bind a loopback (or given) address and serve forever.
//! * `cluster` — bind a router in front of a list of worker addresses.
//! * `load_report` — the workspace's 20th experiment: drives request
//!   mixes against a local server and writes `BENCH_pr4.json` with
//!   throughput, latency quantiles, rejection behaviour under overload,
//!   cache hit ratios, and a serial-replay fidelity check against the
//!   batch runner.
//! * `storm_report` — the multi-node benchmark: router + ≥ 2 workers,
//!   sharding balance/hit-ratio gates, streaming-session fidelity, a
//!   mid-storm worker kill, and cache warming; writes `BENCH_pr9.json`.

pub mod client;
pub mod cluster;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::{Client, ClientConfig, ClientError};
pub use cluster::{warm_worker, HashRing, Router, RouterConfig};
pub use protocol::{
    calibration_shard_key, snapshot_entry_from_json, snapshot_entry_to_json, write_frame,
    CharacterizeSpec, ClosedLoopSpec, DesignSpec, ErrorCode, FrameError, FrameReader, Request,
    RequestBody, Response, ResponsePayload, SessionSpec, TraceSource, MAX_FRAME_LEN,
    PROTOCOL_VERSION, SNAPSHOT_MAX_ENTRIES,
};
pub use server::{ServeConfig, Server, ShutdownReport, BATCH_MAX};
pub use service::{Service, ServiceStats, MAX_OPEN_SESSIONS, MAX_SESSION_SAMPLES};
