//! didt-serve: the characterization pipeline as a network service.
//!
//! Everything below this crate runs as batch experiment binaries; this
//! crate turns the same analyses into an always-on, measured subsystem —
//! the paper's §5 online-monitor framing ("is this trace about to cause
//! a voltage emergency?") answered on demand over TCP.
//!
//! # Architecture
//!
//! * [`protocol`] — a length-prefixed JSON wire format (reusing
//!   `didt-telemetry`'s vendored JSON layer; the offline build has no
//!   serde). One `u32` big-endian length prefix, then a UTF-8 JSON
//!   document. Requests are [`protocol::Request`]; responses are
//!   [`protocol::Response`].
//! * [`service`] — [`service::Service`]: the request handlers. One
//!   process-wide [`didt_bench::SweepContext`] calibration cache is
//!   shared by every connection, so PDNs, monitor designs, gain models,
//!   captured traces and uncontrolled baselines are computed once per
//!   distinct spec no matter how many clients ask.
//! * [`server`] — [`server::Server`]: a threaded TCP front. A bounded
//!   admission queue feeds a fixed worker pool; when the queue is full
//!   the connection thread answers
//!   [`protocol::ResponsePayload::Rejected`] immediately instead of
//!   queueing unboundedly. Per-request deadlines abort long simulations
//!   cooperatively (via [`didt_core::DidtError::DeadlineExceeded`]), and
//!   shutdown drains in-flight work before returning.
//! * [`client`] — [`client::Client`]: a small blocking client used by
//!   the `load_report` harness, the examples and the protocol tests.
//!
//! # Binaries
//!
//! * `serve` — bind a loopback (or given) address and serve forever.
//! * `load_report` — the workspace's 20th experiment: drives request
//!   mixes against a local server and writes `BENCH_pr4.json` with
//!   throughput, latency quantiles, rejection behaviour under overload,
//!   cache hit ratios, and a serial-replay fidelity check against the
//!   batch runner.

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::{Client, ClientError};
pub use protocol::{
    write_frame, CharacterizeSpec, ClosedLoopSpec, DesignSpec, ErrorCode, FrameError, FrameReader,
    Request, RequestBody, Response, ResponsePayload, TraceSource, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ShutdownReport, BATCH_MAX};
pub use service::{Service, ServiceStats};
