//! Offline characterization of one workload (paper §4).
//!
//! Captures a current trace for a benchmark (pass a SPEC name as the
//! first argument; defaults to `crafty`), classifies its windows with
//! the chi-squared Gaussianity test, estimates its voltage-emergency
//! exposure with the wavelet variance model, and compares the estimate
//! with a direct PDN simulation.
//!
//! Run with: `cargo run --release --example characterize_workload [name]`

use didt_core::characterize::{
    EmergencyEstimator, GaussianityStudy, ScaleGainModel, VarianceModel,
};
use didt_core::DidtSystem;
use didt_uarch::{capture_trace, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crafty".into());
    let bench: Benchmark = name.parse()?;

    let sys = DidtSystem::standard()?;
    println!("characterizing {name} ...");
    let trace = capture_trace(bench, sys.processor(), 0xD1D7, 100_000, 1 << 18);
    println!(
        "  trace: {} cycles, IPC {:.2}, L2 MPKI {:.1}, mean current {:.1} A",
        trace.len(),
        trace.stats.ipc(),
        trace.stats.l2_mpki(),
        trace.mean_current()
    );

    // Gaussianity of execution windows (paper Figures 6/12).
    let study = GaussianityStudy::new(0.95, 1);
    for window in [32, 64, 128] {
        let r = study.classify(&trace.samples, window, 400)?;
        println!(
            "  {window:>3}-cycle windows: {:.1}% Gaussian ({} degenerate), non-Gaussian variance {:.1} A² vs overall {:.1} A²",
            100.0 * r.acceptance_rate(),
            r.degenerate,
            r.non_gaussian_variance,
            r.overall_variance
        );
    }

    // Voltage-emergency estimate vs observation (paper Figure 9).
    let pdn = sys.pdn_at(150.0)?;
    let gains = ScaleGainModel::calibrate(&pdn, 64, 0xCAB1)?;
    let estimator = EmergencyEstimator::new(VarianceModel::new(gains), 0.97);
    let r = estimator.compare(&trace.samples, &pdn)?;
    println!("\n  at 150% target impedance, threshold 0.97 V:");
    println!("    estimated % cycles below: {:.2}%", 100.0 * r.estimated);
    println!("    observed  % cycles below: {:.2}%", 100.0 * r.observed);
    println!("    mean estimated voltage  : {:.4} V", r.mean_voltage);
    let verdict = if r.observed > 0.03 {
        "a dI/dt problem benchmark"
    } else if r.observed > 0.005 {
        "moderately exposed"
    } else {
        "benign for dI/dt"
    };
    println!("    verdict: {verdict}");
    Ok(())
}
