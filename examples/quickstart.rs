//! Quickstart: the paper's Figure 3 worked example, end to end.
//!
//! Decomposes a small signal with the Haar wavelet, prints the
//! coefficient matrix (paper Figure 2), reconstructs the subbands
//! (Figure 3) and verifies they sum back to the signal, then shows the
//! whole machinery on one real simulated current window.
//!
//! Run with: `cargo run --release --example quickstart`

use didt_core::DidtSystem;
use didt_dsp::{dwt, subband_decompose, wavelet::Haar};
use didt_uarch::{capture_trace, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the paper's 8-sample example ------------------------
    let signal = [4.0, 2.0, 4.0, 0.0, 2.0, 2.0, 2.0, 0.0];
    println!("signal: {signal:?}\n");

    let decomp = dwt(&signal, &Haar, 2)?;
    println!("coefficient matrix (orthonormal Haar):");
    println!("  a[k]    = {:?}", rounded(decomp.approximation()));
    println!(
        "  d[2][k] = {:?}  (coarse details)",
        rounded(decomp.detail(2)?)
    );
    println!(
        "  d[1][k] = {:?}  (fine details)\n",
        rounded(decomp.detail(1)?)
    );

    let bands = subband_decompose(&decomp)?;
    println!("subband signals (approximation first, then fine → coarse):");
    for (i, band) in bands.iter().enumerate() {
        println!("  band {i}: {:?}", rounded(band));
    }
    let sum: Vec<f64> = (0..signal.len())
        .map(|t| bands.iter().map(|b| b[t]).sum())
        .collect();
    println!("  sum   : {:?}  (= original signal)\n", rounded(&sum));
    for (a, b) in signal.iter().zip(&sum) {
        assert!((a - b).abs() < 1e-9);
    }

    // --- Part 2: a real current window -------------------------------
    let sys = DidtSystem::standard()?;
    let trace = capture_trace(Benchmark::Gzip, sys.processor(), 7, 50_000, 256);
    let decomp = dwt(&trace.samples, &Haar, 8)?;
    println!("gzip 256-cycle current window:");
    println!("  mean current   : {:.1} A", trace.mean_current());
    let scales = didt_dsp::scale_variances(&decomp)?;
    println!("  variance by wavelet scale (span in cycles → A²):");
    for sv in &scales {
        println!(
            "    span {:>3}: {:8.3}  (adjacent-coeff corr {:+.2})",
            sv.span, sv.variance, sv.adjacent_correlation
        );
    }
    let pdn = sys.pdn_at(150.0)?;
    println!(
        "\nPDN resonance {:.0} MHz = {:.0}-cycle period: the span-16/32 rows are the dI/dt danger zone",
        pdn.resonant_frequency() / 1e6,
        pdn.resonant_period_cycles()
    );
    Ok(())
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
