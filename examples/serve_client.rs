//! End-to-end service round trip: start an in-process server, issue one
//! `Characterize` request over real TCP, print the report.
//!
//! Run with: `cargo run --release --example serve_client`

use didt_serve::{CharacterizeSpec, Client, ServeConfig, Server, Service, TraceSource};
use didt_telemetry::Json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A real server on a loopback port, backed by the shared
    // calibration cache every connection benefits from.
    let server = Server::start(ServeConfig::default(), Service::standard()?)?;
    let addr = server.local_addr();
    println!("server up on {addr}");

    let mut client = Client::connect(addr)?;
    println!("ping: protocol version {}", client.ping()?);

    // Characterize a synthesized gzip trace at 150 % supply impedance:
    // per-scale wavelet variance, a chi-squared Gaussianity verdict and
    // the Gaussian emergency-fraction estimate, all computed server-side.
    let report = client.characterize(
        CharacterizeSpec {
            trace: TraceSource::Synth {
                benchmark: "gzip".to_string(),
                seed: 0xD1D7,
                warmup: 1_000,
                cycles: 8_192,
            },
            pdn_pct: 150.0,
            window: 256,
            ..CharacterizeSpec::default()
        },
        Some(30_000),
    )?;

    let f = |path: &[&str]| {
        let mut v = Some(&report);
        for key in path {
            v = v.and_then(|j| j.get(key));
        }
        v.and_then(Json::as_f64).unwrap_or(f64::NAN)
    };
    println!("trace length: {} cycles", f(&["trace_len"]));
    if let Some(scales) = report.get("scales").and_then(Json::as_arr) {
        println!("per-scale variance (level: A^2):");
        for s in scales {
            println!(
                "  level {:2} (span {:4}): {:.6e}",
                s.get("level").and_then(Json::as_f64).unwrap_or(f64::NAN),
                s.get("span").and_then(Json::as_f64).unwrap_or(f64::NAN),
                s.get("variance").and_then(Json::as_f64).unwrap_or(f64::NAN),
            );
        }
    }
    println!(
        "gaussianity: {:.1} % of {} windows accepted",
        100.0 * f(&["gaussianity", "acceptance_rate"]),
        f(&["gaussianity", "tested"]),
    );
    println!(
        "emergency estimate: {:.4} of windows below {} V (mean voltage {:.4} V)",
        f(&["emergency", "estimated_fraction"]),
        f(&["emergency", "threshold"]),
        f(&["emergency", "mean_voltage"]),
    );

    let report = server.shutdown();
    println!(
        "server drained: {} served, {} rejected, {} panics",
        report.served, report.rejected, report.worker_panics
    );
    Ok(())
}
