//! The recorded-trace toolchain, end to end: capture a workload into a
//! `.dtrc` file, read it back, cluster its phases, and replay both the
//! full trace and one representative slice through the stressed PDN.
//!
//! Run with: `cargo run --release --example trace_replay`

use didt_bench::SweepContext;
use didt_trace::{cluster_records, read_path, write_path, PhaseConfig, RecordKind, TraceMeta};
use didt_uarch::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = SweepContext::standard()?;

    // 1. Record: simulate swim open-loop and capture per-cycle current,
    //    power and event counts (cached inside the context, like every
    //    other calibration artifact).
    let records = ctx.record_trace(
        Benchmark::Swim,
        ctx.system().processor(),
        0xD1D7_2004,
        2_000,  // warmup cycles, discarded
        32_768, // recorded cycles
    );

    // 2. Persist as a versioned `.dtrc` container (TRACE_FORMAT.md):
    //    framed, compressed, CRC-checked.
    let dir = std::env::temp_dir().join("didt-trace-replay-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("swim.dtrc");
    let mut meta = TraceMeta::new(RecordKind::Full, "swim");
    meta.seed = 0xD1D7_2004;
    meta.discarded_warmup = 2_000;
    write_path(&path, &meta, &records)?;
    let raw = records.len() * RecordKind::Full.logical_width();
    let on_disk = std::fs::metadata(&path)?.len();
    println!(
        "recorded {} cycles of swim -> {} ({} KiB raw, {} KiB on disk)",
        records.len(),
        path.display(),
        raw / 1024,
        on_disk / 1024,
    );

    // 3. Read back. The reader verifies every chunk's CRC; the records
    //    are bit-identical to what the simulator produced.
    let (got_meta, got) = read_path(&path)?;
    assert_eq!(got_meta, meta);
    assert!(got.iter().zip(records.iter()).all(|(a, b)| a.bits_eq(b)));
    println!(
        "read back '{}': {} records, bit-identical",
        got_meta.name,
        got.len()
    );

    // 4. Cluster 1024-cycle intervals into phases (k-means over summary
    //    stats and per-scale Haar variances, fixed seed).
    let cfg = PhaseConfig {
        interval: 1_024,
        clusters: 4,
        levels: 4,
        ..PhaseConfig::default()
    };
    let phases = cluster_records(&got, &cfg)?;
    println!(
        "\n{} intervals -> {} phases (inertia {:.2}):",
        phases.intervals,
        phases.representatives.len(),
        phases.inertia
    );
    for rep in &phases.representatives {
        println!(
            "  phase {}: representative interval {:4} (cycles {:6}..{:6}), weight {:.3}",
            rep.cluster,
            rep.interval,
            rep.interval * cfg.interval,
            (rep.interval + 1) * cfg.interval,
            rep.weight
        );
    }

    // 5. Replay through the 150 % PDN: the full trace is ground truth;
    //    the weighted representative slices are the phase estimate.
    let pdn = ctx.pdn(150.0)?;
    let emergency_fraction = |from: usize, to: usize| {
        let mut sim = pdn.simulator();
        for r in &got[from.saturating_sub(512)..from] {
            sim.step(r.current); // settle the LC filter, unscored
        }
        let mut hits = 0usize;
        for r in &got[from..to] {
            let v = sim.step(r.current);
            if !(0.95..=1.05).contains(&v) {
                hits += 1;
            }
        }
        hits as f64 / (to - from) as f64
    };
    let truth = emergency_fraction(512, got.len());
    let estimate = phases.weighted_estimate(|rep| {
        emergency_fraction(
            rep.interval * cfg.interval,
            (rep.interval + 1) * cfg.interval,
        )
    });
    println!(
        "\nemergency fraction at 150% impedance: full trace {truth:.5}, \
         weighted {}-slice estimate {estimate:.5}",
        phases.representatives.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
