//! Scalogram explorer (paper Figure 4).
//!
//! Captures a current window from any benchmark and prints its Haar
//! scalogram, showing how the current's frequency content is localized
//! in time — bursts light up the fine scales right where they happen,
//! memory stalls leave coarse-scale-only stripes.
//!
//! Run with: `cargo run --release --example scalogram [name] [cycles]`

use didt_core::DidtSystem;
use didt_dsp::{dwt, wavelet::Haar, Scalogram};
use didt_uarch::{capture_trace, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let cycles: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(512);
    if !cycles.is_power_of_two() || cycles < 16 {
        return Err("cycles must be a power of two >= 16".into());
    }
    let bench: Benchmark = name.parse()?;

    let sys = DidtSystem::standard()?;
    let trace = capture_trace(bench, sys.processor(), 0xD1D7, 120_000, cycles);
    println!(
        "{name}: {cycles} cycles, current {:.1}-{:.1} A (mean {:.1} A)\n",
        trace.samples.iter().copied().fold(f64::INFINITY, f64::min),
        trace
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max),
        trace.mean_current()
    );
    let levels = (cycles.trailing_zeros() as usize).min(8);
    let decomp = dwt(&trace.samples, &Haar, levels)?;
    let sg = Scalogram::from_decomposition(&decomp);
    print!("{}", sg.render());
    println!(
        "\nrows: scale 1 = 2-cycle features ... scale {levels} = {}-cycle features",
        1 << levels
    );
    println!("darker cells = larger detail coefficients (more current change at that time/scale)");
    Ok(())
}
