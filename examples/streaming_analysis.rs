//! Streaming wavelet analysis of a live simulation (extension demo).
//!
//! Feeds the processor's per-cycle current straight into the streaming
//! Haar pyramid (`didt_dsp::StreamingHaar`), maintains a running variance
//! per resonant-band scale, and flags the cycles where the mid-frequency
//! (dI/dt-dangerous) energy spikes — an online, O(1)-per-cycle version of
//! the paper's offline §4 analysis.
//!
//! Run with: `cargo run --release --example streaming_analysis [name]`

use didt_core::DidtSystem;
use didt_dsp::StreamingHaar;
use didt_uarch::{Benchmark, ControlAction, Processor, WorkloadGenerator};

/// Exponentially-weighted mean of squared detail coefficients per level.
struct ScaleEnergy {
    ewma: Vec<f64>,
    alpha: f64,
}

impl ScaleEnergy {
    fn new(levels: usize, alpha: f64) -> Self {
        ScaleEnergy {
            ewma: vec![0.0; levels],
            alpha,
        }
    }

    fn update(&mut self, level: usize, value: f64) {
        let e = &mut self.ewma[level - 1];
        *e += self.alpha * (value * value - *e);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".into());
    let bench: Benchmark = name.parse()?;
    let sys = DidtSystem::standard()?;
    let pdn = sys.pdn_at(150.0)?;
    let resonant_levels = {
        // Levels whose span brackets the resonant period.
        let period = pdn.resonant_period_cycles();
        let lo = (period / 2.0).log2().floor() as usize;
        lo.max(1)..=(lo + 1)
    };
    println!(
        "{name}: streaming Haar analysis; resonant period {:.0} cycles → watching levels {:?}",
        pdn.resonant_period_cycles(),
        resonant_levels
    );

    let gen = WorkloadGenerator::new(bench.profile(), 0xD1D7);
    let mut cpu = Processor::new(*sys.processor(), gen);
    for _ in 0..100_000 {
        cpu.step(ControlAction::Normal);
    }

    let levels = 6;
    let mut pyramid = StreamingHaar::new(levels)?;
    // Fast tracker follows bursts; the slow one provides the baseline the
    // alert threshold adapts to.
    let mut fast = ScaleEnergy::new(levels, 0.05);
    let mut slow = ScaleEnergy::new(levels, 0.001);
    let mut alerts = 0u32;
    let mut last_alert: i64 = -1_000;
    let cycles = 200_000i64;
    for n in 0..cycles {
        let out = cpu.step(ControlAction::Normal);
        for c in pyramid.push(out.current) {
            fast.update(c.level, c.value);
            slow.update(c.level, c.value);
        }
        let burst: f64 = resonant_levels.clone().map(|l| fast.ewma[l - 1]).sum();
        let baseline: f64 = resonant_levels.clone().map(|l| slow.ewma[l - 1]).sum();
        // Alert when resonant-band energy runs 4x above its own baseline.
        if n > 10_000 && burst > 4.0 * baseline && burst > 1.0 && n - last_alert > 5_000 {
            alerts += 1;
            last_alert = n;
            println!(
                "  cycle {n:>7}: resonant-band energy {burst:7.1} A² ({:.1}x baseline) — dI/dt risk window",
                burst / baseline.max(1e-9)
            );
            if alerts >= 12 {
                println!("  ... (stopping after 12 alerts)");
                break;
            }
        }
    }
    println!(
        "\n{alerts} alert(s) in {} cycles; pyramid consumed {} samples with O(1) work each",
        cycles.min(pyramid.samples() as i64),
        pyramid.samples()
    );
    Ok(())
}
