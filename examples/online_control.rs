//! Online wavelet dI/dt control (paper §5), end to end.
//!
//! Builds the 150 % target-impedance system, designs a 13-term wavelet
//! voltage monitor for it, and runs a benchmark with and without
//! closed-loop control, reporting emergencies, slowdown and false
//! positives — one row of the paper's Figure 15 / Table 2.
//!
//! Run with: `cargo run --release --example online_control [name]`

use didt_core::control::{ClosedLoop, ClosedLoopConfig, NoControl, ThresholdController};
use didt_core::monitor::{VoltageMonitor, WaveletMonitorDesign};
use didt_core::DidtSystem;
use didt_uarch::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "swim".into());
    let bench: Benchmark = name.parse()?;

    let sys = DidtSystem::standard()?;
    let pdn = sys.pdn_at(150.0)?;

    // Design the monitor: DWT of the PDN impulse response, top-13 terms.
    let design = WaveletMonitorDesign::new(&pdn, 256)?;
    let monitor = design.build(13, 1)?;
    println!(
        "wavelet monitor: {} terms, {}-cycle latency",
        monitor.term_count(),
        monitor.delay()
    );
    println!("  top weights (kind, level, index, volts/unit):");
    for w in &design.weights()[..6] {
        println!(
            "    {:?} level {} index {:>2}  w = {:+.5}",
            w.kind, w.level, w.index, w.weight
        );
    }
    println!(
        "  truncation bound at 13 terms: {:.1} mV\n",
        1000.0 * design.truncation_error_bound(13, 45.0)
    );

    let cfg = ClosedLoopConfig {
        warmup_cycles: 30_000,
        instructions: 100_000,
        ..ClosedLoopConfig::standard(bench)
    };
    let harness = ClosedLoop::new(*sys.processor(), pdn, cfg);

    println!("running {name} uncontrolled ...");
    let base = harness.run(&mut NoControl)?;
    println!(
        "  {} cycles, v in [{:.4}, {:.4}] V, {} emergencies",
        base.cycles,
        base.v_min,
        base.v_max,
        base.emergencies()
    );

    println!("running {name} under wavelet control (0.975 / 1.025 V control points) ...");
    let mut ctl = ThresholdController::new(monitor, 0.975, 1.025, 0.004);
    let controlled = harness.run(&mut ctl)?;
    println!(
        "  {} cycles, v in [{:.4}, {:.4}] V, {} emergencies",
        controlled.cycles,
        controlled.v_min,
        controlled.v_max,
        controlled.emergencies()
    );
    println!(
        "  slowdown {:.2}%, control on {:.2}% of cycles, false-positive rate {:.1}%",
        100.0 * controlled.slowdown_vs(&base),
        100.0 * controlled.control_fraction(),
        100.0 * controlled.false_positive_rate()
    );
    if base.emergencies() > 0 {
        println!(
            "  emergencies eliminated: {:.1}%",
            100.0 * (1.0 - controlled.emergencies() as f64 / base.emergencies() as f64)
        );
    }
    Ok(())
}
